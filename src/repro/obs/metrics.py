"""Dependency-free metrics registry: counters, gauges, latency histograms.

The stack's components each grew private telemetry — ``ServiceStats`` on
the async service, ``AttackRunStats`` on the attack runner, a hand-rolled
``stats`` op on the TCP server.  This module gives them one vocabulary: a
:class:`MetricsRegistry` hands out named, label-tagged instruments that
are

* **thread-safe** — every mutation takes the instrument's own lock, so
  the sync service (driven from any thread) and the attack runner's
  parent process can share a registry;
* **snapshot-able** — :meth:`MetricsRegistry.snapshot` returns plain
  JSON-safe dicts (the ``{"op": "metrics"}`` server response, and the
  artifact the future ablation harness diffs via
  :func:`repro.obs.export_snapshot`);
* **pay-for-what-you-touch** — a registry constructed with
  ``enabled=False`` hands out shared no-op instruments whose ``inc`` /
  ``set`` / ``observe`` are empty methods, so an uninstrumented
  deployment's hot path does no locking, no timing and no allocation
  (``benchmarks/test_bench_obs.py`` gates the enabled path within 5% of
  this no-op path).

:class:`Histogram` keeps **fixed bucket counts** (the Prometheus
exposition shape) *plus* a bounded ring of raw samples, so its
p50/p95/p99 are **exact** nearest-rank quantiles over the retained
window (default: the last 8192 observations) rather than bucket
interpolations.

Metric naming follows the Prometheus convention documented in
``docs/architecture.md``: ``<component>_<quantity>[_<unit>]`` with
``_total`` for counters (``service_kernel_seconds``,
``serving_flushes_total{trigger="size"}``, ``attack_tasks_total``).

The process-wide default registry (:func:`get_registry`) is enabled
unless the ``REPRO_OBS_DISABLED`` environment variable is set to a
truthy value; components take an explicit ``registry=`` for isolation
(benchmarks, property tests) and fall back to the default otherwise.
"""

from __future__ import annotations

import math
import os
import re
import threading
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "export_snapshot",
]

#: Default bucket upper bounds (seconds) for latency histograms — the
#: Prometheus classic ladder, widened to cover a 10µs kernel call and a
#: 10s straggler alike.  ``+Inf`` is implicit.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for size-shaped histograms (batch sizes,
#: task counts): powers of two up to 4096.
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: Exact-quantile retention window per histogram (ring of raw samples).
DEFAULT_SAMPLE_WINDOW = 8192

#: Label-set type: instruments are keyed by name plus sorted label pairs.
LabelItems = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical sorted ``((key, value), ...)`` form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    """The flat snapshot key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


#: One ``key="value"`` label pair inside a rendered metric key.  Values
#: were produced by ``str()`` at labelling time and never contain quotes
#: in this codebase's vocabulary (op names, trigger names, shard ids).
_LABEL_PAIR = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="([^"]*)"')


def _parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_render_key`: ``'name{k="v"}'`` → ``("name", {"k": "v"})``.

    The inverse exists because snapshots flatten ``(name, labels)`` into
    one rendered string; :meth:`MetricsRegistry.merge` needs the parts
    back to re-register the instrument locally.
    """
    name, brace, inner = key.partition("{")
    if not brace:
        return key, {}
    if not inner.endswith("}"):
        raise ParameterError(f"malformed metric key {key!r}")
    return name, {label: value for label, value in _LABEL_PAIR.findall(inner[:-1])}


def _valid_name(name: str) -> bool:
    """Prometheus-compatible metric/label name check."""
    if not name or not (name[0].isalpha() or name[0] == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name)


class Counter:
    """A monotonically increasing counter.

    >>> c = Counter("logins_total", ())
    >>> c.inc(); c.inc(3); c.value
    4
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ParameterError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A point-in-time value that can move both ways (or track a max)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if larger (high-water-mark shape)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current gauge reading."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with exact quantiles over a sample window.

    Two structures per histogram:

    * cumulative **bucket counts** over the configured upper bounds —
      cheap (one ``bisect``-style scan per observe), never-lossy for the
      Prometheus exposition;
    * a bounded **ring of raw samples** (``sample_window`` most recent
      observations) from which :meth:`quantile` computes *exact*
      nearest-rank percentiles — the p50/p95/p99 a live ``repro
      metrics`` scrape reports.

    >>> h = Histogram("t_seconds", (), buckets=(0.1, 1.0))
    >>> for v in (0.05, 0.2, 0.3, 5.0): h.observe(v)
    >>> h.count, h.quantile(0.5)
    (4, 0.2)
    """

    __slots__ = (
        "name", "labels", "buckets", "_bucket_counts", "_samples",
        "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ParameterError(
                f"histogram {name}: buckets must be a sorted non-empty sequence"
            )
        if sample_window < 1:
            raise ParameterError(
                f"histogram {name}: sample_window must be >= 1, got {sample_window}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._samples: deque = deque(maxlen=sample_window)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # Linear scan beats bisect for the short ladders used here, and
        # most latency observations land in the first few buckets.
        index = 0
        buckets = self.buckets
        while index < len(buckets) and value > buckets[index]:
            index += 1
        with self._lock:
            self._bucket_counts[index] += 1
            self._samples.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        Bucket indices are resolved outside the lock; the critical
        section is pure list/deque mutation.  Hot batching call-sites
        (per-flush queue-wait publication) use this so telemetry cost
        scales with flushes, not with individual waiters.
        """
        values = [float(v) for v in values]
        if not values:
            return
        buckets = self.buckets
        size = len(buckets)
        indexed = []
        for value in values:
            index = 0
            while index < size and value > buckets[index]:
                index += 1
            indexed.append((index, value))
        lo = min(values)
        hi = max(values)
        with self._lock:
            counts = self._bucket_counts
            append = self._samples.append
            for index, value in indexed:
                counts[index] += 1
                append(value)
            self._count += len(values)
            self._sum += sum(values)
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi

    @property
    def count(self) -> int:
        """Total observations ever recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations ever recorded."""
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Exact nearest-rank *q*-quantile over the retained sample window.

        ``None`` before the first observation.  Exact because it sorts
        the raw retained samples — no bucket interpolation — but scoped
        to the window when more than ``sample_window`` observations have
        been recorded.
        """
        if not 0 <= q <= 1:
            raise ParameterError(f"q must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return None
        rank = max(math.ceil(q * len(ordered)), 1) - 1
        return ordered[rank]

    def snapshot(self, include_samples: bool = False) -> dict:
        """JSON-safe state: count/sum/min/max, exact p50/p95/p99, buckets.

        With ``include_samples=True`` the dict also carries the retained
        raw sample ring (oldest→newest) under ``"samples"`` — the extra
        payload :meth:`merge` needs to reconstitute exact quantiles on the
        receiving side.  The cluster router's upstream fan-out asks for it
        (``{"op": "metrics", "samples": true}``); plain scrapes stay
        compact.
        """
        with self._lock:
            raw = list(self._samples)
            counts = list(self._bucket_counts)
            count, total = self._count, self._sum
            lo = self._min if self._count else None
            hi = self._max if self._count else None
        ordered = sorted(raw)

        def rank(q: float) -> Optional[float]:
            if not ordered:
                return None
            return ordered[max(math.ceil(q * len(ordered)), 1) - 1]

        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + counts[-1]
        snap = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "window": len(ordered),
            "buckets": cumulative,
        }
        if include_samples:
            snap["samples"] = raw
        return snap

    def merge(self, snap: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Bucket counts add, ``count``/``sum`` add, ``min``/``max`` extend,
        and the incoming ``"samples"`` ring (when present) appends to this
        histogram's ring — the ``deque`` re-applies the window cap, so the
        merged quantiles are exact over the most recently appended
        ``sample_window`` observations.  The snapshot's bucket bounds must
        match this histogram's bounds exactly (cross-process merges only
        make sense between instruments created from the same code path).
        """
        if not snap:
            return
        expected = [f"{bound:g}" for bound in self.buckets] + ["+Inf"]
        cumulative = snap.get("buckets") or {}
        if list(cumulative) != expected:
            raise ParameterError(
                f"histogram {self.name}: cannot merge snapshot with bucket "
                f"bounds {list(cumulative)} into bounds {expected}"
            )
        per_bucket: List[int] = []
        previous = 0
        for key in expected:
            value = int(cumulative[key])
            per_bucket.append(value - previous)
            previous = value
        count = int(snap.get("count") or 0)
        total = float(snap.get("sum") or 0.0)
        lo = snap.get("min")
        hi = snap.get("max")
        samples = snap.get("samples") or ()
        with self._lock:
            for index, bucket_count in enumerate(per_bucket):
                self._bucket_counts[index] += bucket_count
            for value in samples:
                self._samples.append(float(value))
            self._count += count
            self._sum += total
            if lo is not None and float(lo) < self._min:
                self._min = float(lo)
            if hi is not None and float(hi) > self._max:
                self._max = float(hi)


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry.

    Every mutator is an empty method and every reading is a constant, so
    ``registry.counter(...).inc()`` on the disabled path costs two
    dict-free attribute lookups and an empty call — the no-op baseline
    the overhead gate compares against.
    """

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def set_max(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def observe_many(self, values: Iterable[float]) -> None:
        """No-op."""

    def quantile(self, q: float) -> Optional[float]:
        """Always ``None`` — a disabled histogram retains nothing."""
        return None

    @property
    def value(self) -> int:
        """Always 0."""
        return 0

    @property
    def count(self) -> int:
        """Always 0."""
        return 0

    @property
    def sum(self) -> float:
        """Always 0.0."""
        return 0.0

    def snapshot(self, include_samples: bool = False) -> dict:
        """An empty snapshot."""
        return {}

    def merge(self, snap: Mapping[str, object]) -> None:
        """No-op."""


#: The single shared no-op instrument (stateless, so one suffices).
NULL_INSTRUMENT = _NullInstrument()

#: Any instrument a registry can hand out.
Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Named, label-tagged instruments behind one snapshot/exposition.

    Parameters
    ----------
    enabled:
        ``False`` builds a permanently disabled registry: every
        ``counter`` / ``gauge`` / ``histogram`` call returns the shared
        no-op instrument and :meth:`snapshot` stays empty.  Components
        cache the returned instruments, so toggling happens at
        construction time, not per operation — the pay-for-what-you-touch
        contract.

    Asking twice for the same ``(name, labels)`` returns the same
    instrument; asking for an existing name with a different instrument
    kind raises :class:`~repro.errors.ParameterError`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._metrics: Dict[Tuple[str, LabelItems], Instrument] = {}
        self._kinds: Dict[str, type] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything at all."""
        return self._enabled

    # -- instrument access ---------------------------------------------------

    def _get(
        self,
        kind: type,
        name: str,
        labels: Mapping[str, object],
        help: str,
        **kwargs,
    ) -> Instrument:
        if not self._enabled:
            return NULL_INSTRUMENT
        if not _valid_name(name):
            raise ParameterError(f"invalid metric name {name!r}")
        for label in labels:
            if not _valid_name(label):
                raise ParameterError(f"invalid label name {label!r} on {name}")
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind is not kind:
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{registered_kind.__name__}, not {kind.__name__}"
                )
            instrument = kind(name, key[1], **kwargs)
            self._metrics[key] = instrument
            self._kinds[name] = kind
            if help and name not in self._help:
                self._help[name] = help
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter registered under ``name`` + *labels* (created once)."""
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge registered under ``name`` + *labels* (created once)."""
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
        **labels,
    ) -> Histogram:
        """The histogram registered under ``name`` + *labels* (created once).

        *buckets* / *sample_window* apply on first registration only;
        later calls return the existing instrument unchanged.
        """
        return self._get(
            Histogram, name, labels, help,
            buckets=buckets, sample_window=sample_window,
        )

    # -- export --------------------------------------------------------------

    def _sorted_items(self) -> List[Tuple[Tuple[str, LabelItems], Instrument]]:
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self, include_samples: bool = False) -> dict:
        """Plain-dict view of every instrument (JSON-safe, diff-friendly).

        Shape::

            {"enabled": true,
             "counters":   {"serving_flushes_total{trigger=\\"size\\"}": 12, ...},
             "gauges":     {"attack_straggler_ratio": 1.07, ...},
             "histograms": {"service_kernel_seconds": {"count": ..,
                            "p50": .., "p95": .., "p99": .., "buckets": {..}}}}

        This is the payload of the server's ``{"op": "metrics"}`` response
        and the unit the ablation harness diffs (see
        :func:`repro.obs.export_snapshot`).  ``include_samples=True``
        additionally ships each histogram's raw sample ring so the
        receiving side can :meth:`merge` with exact quantiles — the wire
        format the cluster router uses to fan ``metrics`` out across
        worker processes.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for (name, labels), instrument in self._sorted_items():
            key = _render_key(name, labels)
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[key] = instrument.snapshot(include_samples=include_samples)
        return {
            "enabled": self._enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` from another registry into this one.

        The cross-process aggregation primitive: the cluster router asks
        every worker for ``snapshot(include_samples=True)``, merges them
        into one fresh registry, and answers the client with a single
        coherent view.  Semantics per kind:

        * **counters** — sum;
        * **gauges** — last write wins (merge order decides ties, which
          is the only coherent answer for point-in-time readings);
        * **histograms** — bucket counts add and sample rings
          concatenate, with the window cap re-applied by the ring itself
          (see :meth:`Histogram.merge`).  Snapshots without ``"samples"``
          still merge bucket-exactly; only window quantiles degrade.

        Instruments are (re-)registered locally on first sight, so merge
        is associative over counters and histograms and the result of
        merging N worker snapshots is independent of grouping.  Merging
        into a disabled registry is a no-op.  Returns ``self`` so calls
        chain: ``MetricsRegistry().merge(a).merge(b)``.
        """
        if not self._enabled or not snapshot:
            return self
        for key, value in (snapshot.get("counters") or {}).items():
            name, labels = _parse_key(key)
            self.counter(name, **labels).inc(int(value))
        for key, value in (snapshot.get("gauges") or {}).items():
            name, labels = _parse_key(key)
            self.gauge(name, **labels).set(float(value))
        for key, hist_snap in (snapshot.get("histograms") or {}).items():
            if not hist_snap:
                continue
            name, labels = _parse_key(key)
            bounds = [
                float(bound)
                for bound in (hist_snap.get("buckets") or {})
                if bound != "+Inf"
            ]
            histogram = self.histogram(name, buckets=bounds or LATENCY_BUCKETS, **labels)
            histogram.merge(hist_snap)
        return self

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters and gauges render as single samples; histograms render
        the classic ``_bucket`` / ``_sum`` / ``_count`` triplet plus
        ``_p50`` / ``_p95`` / ``_p99`` gauge lines carrying the exact
        window quantiles (nearest-rank, see :meth:`Histogram.quantile`).
        """
        by_name: Dict[str, List[Tuple[LabelItems, Instrument]]] = {}
        for (name, labels), instrument in self._sorted_items():
            by_name.setdefault(name, []).append((labels, instrument))
        lines: List[str] = []
        for name in sorted(by_name):
            series = by_name[name]
            kind = type(series[0][1])
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            if kind is Counter:
                lines.append(f"# TYPE {name} counter")
                for labels, instrument in series:
                    lines.append(f"{_render_key(name, labels)} {instrument.value}")
            elif kind is Gauge:
                lines.append(f"# TYPE {name} gauge")
                for labels, instrument in series:
                    lines.append(f"{_render_key(name, labels)} {instrument.value:g}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for labels, instrument in series:
                    snap = instrument.snapshot()
                    for bound, cumulative in snap["buckets"].items():
                        bucket_labels = labels + (("le", bound),)
                        lines.append(
                            f"{_render_key(name + '_bucket', bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{_render_key(name + '_sum', labels)} {snap['sum']:g}"
                    )
                    lines.append(
                        f"{_render_key(name + '_count', labels)} {snap['count']}"
                    )
                    for q_name in ("p50", "p95", "p99"):
                        value = snap[q_name]
                        if value is not None:
                            lines.append(
                                f"{_render_key(name + '_' + q_name, labels)} "
                                f"{value:g}"
                            )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every registered instrument (tests and fresh bench runs)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._help.clear()


#: A shared, permanently disabled registry — the explicit way to opt a
#: component out of telemetry (`registry=NULL_REGISTRY`).
NULL_REGISTRY = MetricsRegistry(enabled=False)

#: Process-default registry, disabled via the REPRO_OBS_DISABLED env var.
_default_registry = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS_DISABLED", "") not in ("1", "true", "yes")
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented components fall back to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one.

    Components cache instruments at construction, so swap the default
    *before* building the services that should publish into it.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def export_snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """One JSON-safe dict of every metric — the ablation harness's unit.

    The documented stable surface for diffing two runs: take a snapshot
    before and after toggling a component, subtract counters, compare
    histogram quantiles.  Defaults to the process registry; pass an
    explicit *registry* to export an isolated one.
    """
    return (registry if registry is not None else get_registry()).snapshot()
