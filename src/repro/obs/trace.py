"""Lightweight request tracing: monotonic-clock spans with nesting.

Where :mod:`repro.obs.metrics` answers "what is p99 right now?", this
module answers "where did *this* login spend its time?": a
:class:`Span` is one named, timed region with arbitrary attributes, and
children nest under it (``serving.flush`` → ``serving.kernel`` +
one ``serving.login`` child per decided attempt, each carrying its
queue-wait).

Design constraints, in order:

* **cheap when off** — a tracer built with ``enabled=False`` returns the
  shared :data:`NULL_SPAN` from :meth:`SpanTracer.start`; every method on
  it is a no-op, so instrumented code never branches on "is tracing on?";
* **bounded** — finished *root* spans land in a ring buffer
  (``capacity`` most recent); a long flood retains only its tail, and
  memory is capped regardless of traffic;
* **deterministic under test** — the clock is injectable, so a
  :class:`~repro.passwords.defense.VirtualClock` produces bit-stable
  span timings in tests (the same idiom the rate-limit windows use).

Spans are explicit-parent rather than implicitly contextual: the serving
layer's interleaved batches make "current span" ambiguous, so callers
hold the parent and call :meth:`Span.child`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ParameterError

__all__ = ["Span", "SpanTracer", "NULL_SPAN"]


class Span:
    """One named, timed region of work (use as a context manager or
    :meth:`finish` explicitly).

    Attributes
    ----------
    name:
        The span's operation name (dotted by convention:
        ``serving.flush``, ``serving.kernel``).
    start / end:
        Clock readings (the tracer's clock; ``end`` is ``None`` while
        open).
    attributes:
        Arbitrary key→value annotations (:meth:`annotate`).
    children:
        Nested spans, in creation order.
    """

    __slots__ = ("name", "start", "end", "attributes", "children", "_tracer", "_root")

    def __init__(self, tracer: "SpanTracer", name: str, start: float, root: bool) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = {}
        self.children: List[Span] = []
        self._tracer = tracer
        self._root = root

    def child(self, name: str, **attributes) -> "Span":
        """Open a nested span under this one."""
        span = Span(self._tracer, name, self._tracer.clock(), root=False)
        if attributes:
            span.attributes.update(attributes)
        self.children.append(span)
        return span

    def annotate(self, **attributes) -> "Span":
        """Attach key→value attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end (``None`` while the span is open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self) -> "Span":
        """Close the span; a root span is committed to the tracer's ring."""
        if self.end is None:
            self.end = self._tracer.clock()
            if self._root:
                self._tracer._commit(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def to_dict(self) -> dict:
        """JSON-safe form: name, timings, attributes, nested children."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """The shared no-op span a disabled tracer hands out.

    Children are itself, annotations vanish, finishing does nothing —
    instrumented code paths run identically whether tracing is on or off.
    """

    __slots__ = ()

    name = "null"
    start = 0.0
    end: Optional[float] = 0.0
    attributes: Dict[str, object] = {}
    children: List["_NullSpan"] = []

    def child(self, name: str, **attributes) -> "_NullSpan":
        """Returns itself — nested no-ops stay no-ops."""
        return self

    def annotate(self, **attributes) -> "_NullSpan":
        """No-op; returns self."""
        return self

    @property
    def duration(self) -> float:
        """Always 0.0."""
        return 0.0

    def finish(self) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def to_dict(self) -> dict:
        """An empty dict."""
        return {}


#: The single shared no-op span (stateless, so one suffices).
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Bounded collector of finished root spans.

    Parameters
    ----------
    capacity:
        Ring-buffer size: only this many most-recent *root* spans are
        retained (children ride along with their root).
    clock:
        Zero-argument callable returning seconds — defaults to
        :func:`time.perf_counter`; inject a
        :class:`~repro.passwords.defense.VirtualClock` for deterministic
        tests.
    enabled:
        ``False`` makes :meth:`start` return :data:`NULL_SPAN` forever —
        the zero-overhead path.

    >>> tracer = SpanTracer(capacity=8)
    >>> with tracer.start("flush") as span:
    ...     child = span.child("kernel").finish()
    >>> tracer.recent()[0]["name"]
    'flush'
    """

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self._capacity = capacity
        self._enabled = bool(enabled)
        self._ring: List[Span] = []
        self._next = 0  # ring write cursor
        self._finished = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything at all."""
        return self._enabled

    @property
    def capacity(self) -> int:
        """Maximum retained root spans."""
        return self._capacity

    @property
    def finished_count(self) -> int:
        """Total root spans ever finished (retained or since evicted)."""
        return self._finished

    def start(self, name: str, **attributes) -> Span:
        """Open a new root span (or :data:`NULL_SPAN` when disabled)."""
        if not self._enabled:
            return NULL_SPAN
        span = Span(self, name, self.clock(), root=True)
        if attributes:
            span.attributes.update(attributes)
        return span

    def _commit(self, span: Span) -> None:
        """Ring-insert one finished root span (called from Span.finish)."""
        with self._lock:
            self._finished += 1
            if len(self._ring) < self._capacity:
                self._ring.append(span)
            else:
                self._ring[self._next] = span
                self._next = (self._next + 1) % self._capacity


    def recent(self, limit: Optional[int] = None) -> List[dict]:
        """The retained root spans as dicts, oldest first.

        *limit* keeps only the most recent N (``None``: all retained).
        """
        with self._lock:
            ordered = self._ring[self._next:] + self._ring[: self._next]
        dicts = [span.to_dict() for span in ordered]
        if limit is not None:
            dicts = dicts[-limit:]
        return dicts

    def clear(self) -> None:
        """Drop every retained span (the finished count keeps climbing)."""
        with self._lock:
            self._ring = []
            self._next = 0
