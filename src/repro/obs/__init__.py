"""Unified telemetry: one metrics/tracing vocabulary for the whole stack.

Before this package, each layer kept private telemetry — ``ServiceStats``
counters on the async service, ``AttackRunStats`` on
``runner.last_stats``, a hand-rolled ``stats`` op on the TCP server,
free-text benchmark reports.  ``repro.obs`` replaces none of their
*semantics* but gives them one shared, machine-readable surface:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — thread-safe
  counters, gauges and fixed-bucket latency histograms with **exact**
  p50/p95/p99, snapshot-able to plain dicts and renderable as Prometheus
  text exposition;
* :class:`SpanTracer` (:mod:`repro.obs.trace`) — monotonic-clock spans
  with parent/child nesting, per-span attributes and ring-buffer
  retention, answering "where did this login spend its time?";
* :func:`export_snapshot` — the documented diffable artifact for the
  ablation harness (ROADMAP): snapshot before and after toggling a
  component, subtract.

Consumers: :class:`~repro.passwords.store.PasswordStore` and
:class:`~repro.passwords.service.VerificationService` (kernel/hash
timing, defense counters), :class:`~repro.serving.service.AsyncVerificationService`
(queue-wait, flush triggers, batch sizes),
:class:`~repro.serving.server.LoginServer` (``{"op": "metrics"}`` /
``{"op": "trace"}``, scraped by ``repro metrics``), and
:class:`~repro.attacks.parallel.ShardedAttackRunner` (task/wave/straggler
telemetry).  All of them fall back to the process default registry
(:func:`get_registry`) and accept an explicit ``registry=`` for
isolation; a disabled registry (``MetricsRegistry(enabled=False)``,
or ``REPRO_OBS_DISABLED=1`` for the process default) makes every
instrument a shared no-op — the overhead gate in
``benchmarks/test_bench_obs.py`` holds the enabled path within 5% of it.

Metric naming conventions live in the "Observability" section of
``docs/architecture.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    export_snapshot,
    get_registry,
    set_registry,
)
from repro.obs.trace import NULL_SPAN, Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Span",
    "SpanTracer",
    "export_snapshot",
    "get_registry",
    "set_registry",
]
