"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch any library failure with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. non-positive tolerance).

    Raised eagerly at construction time so that misconfiguration surfaces at
    the call site rather than deep inside a computation.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Two geometric objects with incompatible dimensionality were combined."""


class DomainError(ReproError, ValueError):
    """A point lies outside the domain it is required to be in.

    For example, a click-point outside the image it belongs to.
    """


class EnrollmentError(ReproError, ValueError):
    """A password could not be enrolled (e.g. no r-safe grid available)."""


class VerificationError(ReproError, ValueError):
    """A login attempt could not be checked against a stored record.

    This signals *structural* problems (wrong number of click-points, wrong
    record format) rather than a mere mismatch: a mismatching but well-formed
    attempt verifies to ``False``, it does not raise.
    """


class StoreError(ReproError, KeyError):
    """A password store operation failed (unknown user, duplicate user...)."""


class DatasetError(ReproError, ValueError):
    """A study dataset is malformed or violates its declared invariants."""


class AttackError(ReproError, ValueError):
    """An attack was configured inconsistently with its target."""


class ClusterError(ReproError, RuntimeError):
    """A serving-cluster operation failed (worker startup, upstream loss,
    or a reshard attempted on a layout that cannot support it)."""


class LockoutError(ReproError, RuntimeError):
    """An online login was refused because the account is locked out."""


class RateLimitError(ReproError, RuntimeError):
    """An online login was refused by a per-account rate-limit window.

    ``retry_after`` reports the seconds until the account's sliding window
    frees a slot — the wait an attacker (or a legitimate client) must pay
    before the next attempt is evaluated.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
