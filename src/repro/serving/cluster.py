"""Shard-per-process serving cluster: router, worker processes, live reshard.

The single-process :class:`~repro.serving.server.LoginServer` already sits
on a consistent-hash :class:`~repro.passwords.storage.ShardedBackend`, but
the GIL caps one process at ~100–150k logins/s regardless of core count.
This module turns the same pieces into a real cluster:

* **one worker process per shard** — each worker runs a stock
  :class:`LoginServer` over *its shard's backend exclusively* (opened via
  :func:`~repro.passwords.store.deployed_store` from the shard's persisted
  meta, or a synthetic in-memory population for soak benches), so shard
  ownership is a process boundary, not a lock;
* **a thin asyncio router** (:class:`ClusterRouter`) — speaks the same
  JSONL protocol to clients, hashes ``user`` with the *same* blake2b
  :class:`~repro.passwords.storage.ConsistentHashRing` the backend uses,
  and forwards frames over one persistent upstream connection per worker,
  multiplexing pipelined requests by rewriting the client-chosen ``id``
  to a per-upstream id and restoring it on the way back.  ``stats`` /
  ``metrics`` / ``trace`` fan out to every worker and come back merged
  (counters summed, histogram buckets and sample rings merged through
  :meth:`~repro.obs.MetricsRegistry.merge`);
* **online resharding** (:meth:`ServingCluster.reshard`) — grow the ring
  (4→8 in the drill) under live traffic: new workers spawn on the new
  shard files, then one old shard at a time is gated (requests for its
  accounts park at the router), drained, migrated with
  ``rebalance(clear=False)``, and released onto the new ring.  An
  account's lockout/throttle state has exactly one authoritative home at
  every instant, so nothing is lost — asserted against a single-backend
  reference in the tests.

The router inherits the server's hardening contracts (request-size limit,
bounded pipelining, slow-client backpressure) by framing client sockets
through the same :class:`~repro.serving.server.LineReader`.  Front doors:
``repro cluster URI`` and ``repro flood --cluster``; the soak benchmark is
``make cluster-bench`` (``benchmarks/test_bench_cluster.py``).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ClusterError
from repro.obs import MetricsRegistry
from repro.passwords.storage import (
    ConsistentHashRing,
    ShardedBackend,
    backend_from_uri,
    rebalance,
)
from repro.serving.server import (
    DEFAULT_MAX_PIPELINE,
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_WRITE_HIGH_WATER,
    LineReader,
    LoginServer,
    OVERSIZE,
)

__all__ = [
    "ClusterRouter",
    "ReshardReport",
    "ServingCluster",
    "WorkerHandle",
    "WorkerSpec",
    "cluster_username",
    "default_cluster_workers",
    "merge_stats",
    "synthetic_points",
]

#: Upstream read limit (bytes per response line).  Metrics fan-out replies
#: carry raw histogram sample rings, so worker responses can be far larger
#: than client requests.
_UPSTREAM_READ_LIMIT = 2 ** 24

#: Worker startup budget (seconds) — a soak worker enrolls its slice of a
#: million-account population before reporting ready.
_WORKER_START_TIMEOUT = 600.0


def default_cluster_workers() -> int:
    """Worker-process count cluster benches use: ``$CLUSTER_WORKERS`` or 4."""
    value = os.environ.get("CLUSTER_WORKERS", "")
    try:
        parsed = int(value)
    except ValueError:
        return 4
    return parsed if parsed > 0 else 4


def cluster_username(index: int) -> str:
    """The synthetic population's deterministic account name for *index*."""
    return f"u{index}"


def synthetic_points(
    index: int, seed: int, width: int, height: int, clicks: int = 5
) -> List["Point"]:
    """Deterministic click-points for synthetic account *index*.

    Seeded by ``(seed, index)`` so any process — an enrolling worker, the
    flood driver building attempts, a reference replay — regenerates the
    same password without shipping a million-entry dict around.  Points
    keep a margin from the image edge so within-tolerance jitter stays in
    the domain.
    """
    from repro.geometry.point import Point

    rng = np.random.default_rng((seed, index))
    margin = 30
    xs = rng.integers(margin, width - margin, size=clicks)
    ys = rng.integers(margin, height - margin, size=clicks)
    return [Point.xy(int(x), int(y)) for x, y in zip(xs, ys)]


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs to build its store and serve.

    Picklable by construction — it crosses the ``multiprocessing`` spawn
    boundary.  Exactly one of two population modes applies:

    * ``uri`` set — the worker opens that durable backend and resumes it
      via :func:`~repro.passwords.store.deployed_store` (the ``repro
      cluster`` / reshard-drill shape; the worker owns the shard
      exclusively, the parent only touches it inside a gated cutover);
    * ``uri=None`` — the worker builds an in-memory store and enrolls its
      ring slice of a ``users``-account synthetic population (the soak
      shape: enrollment itself parallelizes across workers).
    """

    index: int
    uri: Optional[str] = None
    host: str = "127.0.0.1"
    # synthetic population (uri=None):
    shard_count: int = 1
    replicas: int = 64
    users: int = 0
    seed: int = 2008
    scheme: str = "centered"
    tolerance_px: int = 9
    lockout_failures: Optional[int] = None
    # serving knobs, forwarded to the worker's LoginServer:
    max_batch: int = 256
    flush_interval: float = 0.0
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    max_pipeline: int = DEFAULT_MAX_PIPELINE


def _synthetic_store(spec: WorkerSpec):
    """Build this worker's in-memory store and enroll its population slice."""
    from repro.passwords.passpoints import PassPointsSystem
    from repro.passwords.policy import LockoutPolicy
    from repro.passwords.store import PasswordStore, scheme_named
    from repro.study.image import cars_image

    image = cars_image()
    system = PassPointsSystem(
        image=image, scheme=scheme_named(spec.scheme, spec.tolerance_px)
    )
    store = PasswordStore(
        system=system, policy=LockoutPolicy(max_failures=spec.lockout_failures)
    )
    ring = ConsistentHashRing(spec.shard_count, spec.replicas)
    # Bulk-enroll the whole ring slice through the store's group-commit
    # path: one put_many/put_throttle_many instead of two backend writes
    # per account — the enrollment half of the soak's startup time.
    store.enroll_many(
        [
            (username, synthetic_points(index, spec.seed, image.width, image.height))
            for index in range(spec.users)
            if ring.index_for(username := cluster_username(index)) == spec.index
        ]
    )
    return store


def _worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: own one shard, serve it over TCP until killed.

    Reports ``("ready", host, port)`` over *conn* once the ephemeral-port
    server is accepting, or ``("error", message)`` if construction fails —
    the parent's :func:`_spawn_workers` turns the latter into a
    :class:`~repro.errors.ClusterError`.
    """
    try:
        if spec.uri is not None:
            from repro.passwords.store import deployed_store

            store = deployed_store(backend_from_uri(spec.uri))
        else:
            store = _synthetic_store(spec)
        server = LoginServer(
            store,
            host=spec.host,
            port=0,
            max_batch=spec.max_batch,
            flush_interval=spec.flush_interval,
            max_request_bytes=spec.max_request_bytes,
            max_pipeline=spec.max_pipeline,
        )

        async def run() -> None:
            await server.start()
            host, port = server.address
            conn.send(("ready", host, port))
            await server.serve_forever()

        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    except Exception as exc:  # surface startup failures to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass


@dataclass
class WorkerHandle:
    """Address and liveness of one spawned shard worker."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    host: str
    port: int

    @property
    def address(self) -> Tuple[str, int]:
        """The worker server's ``(host, port)``."""
        return (self.host, self.port)


def _spawn_workers(specs: Sequence[WorkerSpec]) -> List[WorkerHandle]:
    """Spawn every worker in parallel and block until all report ready.

    Blocking by design — callers on an event loop run it through
    ``run_in_executor`` (reshard spawns new workers while the router keeps
    serving).  The spawn context is explicit: forking a process that
    carries a live event loop and socket fds would leak them into
    children.
    """
    ctx = multiprocessing.get_context("spawn")
    started = []
    for spec in specs:
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_worker_main, args=(spec, child_conn), daemon=True)
        process.start()
        child_conn.close()
        started.append((spec, parent_conn, process))
    handles: List[WorkerHandle] = []
    errors: List[str] = []
    for spec, parent_conn, process in started:
        deadline = time.monotonic() + _WORKER_START_TIMEOUT
        while not parent_conn.poll(0.1):
            if not process.is_alive():
                errors.append(f"worker {spec.index} died during startup")
                break
            if time.monotonic() > deadline:
                errors.append(f"worker {spec.index} startup timed out")
                break
        else:
            try:
                message = parent_conn.recv()
            except EOFError:
                errors.append(f"worker {spec.index} died during startup")
                continue
            if message[0] == "ready":
                handles.append(WorkerHandle(spec.index, process, message[1], message[2]))
            else:
                errors.append(f"worker {spec.index}: {message[1]}")
    if errors:
        for _, _, process in started:
            if process.is_alive():
                process.terminate()
        raise ClusterError("cluster startup failed: " + "; ".join(errors))
    return handles


def _stop_workers(handles: Sequence[WorkerHandle]) -> None:
    """Terminate worker processes and reap them (blocking; executor-run)."""
    for handle in handles:
        if handle.process.is_alive():
            handle.process.terminate()
    for handle in handles:
        handle.process.join(timeout=10)


def merge_stats(replies: Sequence[dict]) -> dict:
    """Merge per-worker ``stats`` payloads into one cluster-wide view.

    Numeric counters sum across workers; ``largest_batch`` takes the max;
    ``mean_batch`` is recomputed from the merged totals (a mean of means
    would weight idle workers equally with busy ones); ``defense``
    describes the deployment, identical on every worker, so the first
    reply's value stands.
    """
    summed = (
        "submitted",
        "decided",
        "pending_count",
        "flushes",
        "size_flushes",
        "deadline_flushes",
        "throttled",
        "captcha_challenged",
        "accounts",
    )
    merged: dict = {key: 0 for key in summed}
    largest = 0
    defense: Optional[dict] = None
    for reply in replies:
        for key in summed:
            merged[key] += int(reply.get(key, 0) or 0)
        largest = max(largest, int(reply.get("largest_batch", 0) or 0))
        if defense is None:
            defense = reply.get("defense")
    merged["largest_batch"] = largest
    merged["mean_batch"] = (
        round(merged["decided"] / merged["flushes"], 2) if merged["flushes"] else 0.0
    )
    merged["defense"] = defense
    return merged


class _Upstream:
    """One persistent JSONL connection from the router to a shard worker.

    Pipelined requests multiplex over the single connection: each outgoing
    frame gets a fresh upstream-local ``id``, a future parks in
    ``_pending`` under that id, and the one reader task resolves futures
    as response lines arrive (workers may answer out of order — every
    request is its own task over there).  Client-chosen ids never cross
    the upstream boundary, so two clients reusing ``id: 1`` cannot
    collide.
    """

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = index
        self.host = host
        self.port = port
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    @property
    def inflight(self) -> int:
        """Requests forwarded but not yet answered."""
        return len(self._pending)

    async def connect(self) -> None:
        """Open the persistent connection and start the demux reader."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_UPSTREAM_READ_LIMIT
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def request(self, payload: dict) -> dict:
        """Forward one frame and await its correlated response."""
        if self._closed or self._writer is None:
            raise ClusterError(f"worker {self.index} connection closed")
        uid = self._next_id
        self._next_id += 1
        frame = dict(payload)
        frame["id"] = uid
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[uid] = future
        self._writer.write(json.dumps(frame, separators=(",", ":")).encode() + b"\n")
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            self._pending.pop(uid, None)
            raise ClusterError(f"worker {self.index} connection lost") from exc
        return await future

    async def _read_loop(self) -> None:
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                response = json.loads(raw)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ClusterError(f"worker {self.index} connection lost")
                    )
            self._pending.clear()

    async def drain_inflight(self) -> None:
        """Wait until no forwarded request is awaiting its response."""
        while self._pending:
            await asyncio.sleep(0.002)

    async def aclose(self) -> None:
        """Cancel the reader and close the upstream socket."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass


class ClusterRouter:
    """Thin asyncio front door that routes JSONL frames by the shard ring.

    Clients speak the exact :class:`~repro.serving.server.LoginServer`
    protocol.  ``login``/``enroll`` hash ``user`` on the shared
    :class:`~repro.passwords.storage.ConsistentHashRing` and forward to
    that shard's worker; ``stats``/``metrics``/``trace`` fan out to every
    worker and reply merged; ``ping`` answers locally (with a ``workers``
    count).  Client connections get the same hardening as the server:
    size-limited framing through :class:`~repro.serving.server.LineReader`
    (oversize → structured ``request_too_large``), an in-flight cap per
    connection, and write-buffer backpressure for slow readers — pauses
    are counted in :attr:`backpressure`.

    During a reshard (driven by :class:`ServingCluster`) the router holds
    two rings: accounts on already-migrated old shards route through the
    new ring, accounts on the shard currently in its cutover window park
    on a gate event, everyone else stays on the old ring.  The gate is the
    "brief per-shard cutover" the drill measures.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        write_high_water: int = DEFAULT_WRITE_HIGH_WATER,
    ) -> None:
        self._host = host
        self._port = port
        self._replicas = replicas
        self._max_request_bytes = max_request_bytes
        self._max_pipeline = max_pipeline
        self._write_high_water = write_high_water
        self._server: Optional[asyncio.base_events.Server] = None
        self._upstreams: List[_Upstream] = []
        self._ring: Optional[ConsistentHashRing] = None
        # resharding state (None/empty outside a drill):
        self._next_upstreams: Optional[List[_Upstream]] = None
        self._next_ring: Optional[ConsistentHashRing] = None
        self._migrated: Set[int] = set()
        self._gates: Dict[int, asyncio.Event] = {}
        self.connections_served = 0
        #: Reader pauses by reason, mirroring ``LoginServer.backpressure``.
        self.backpressure = {"pipeline": 0, "write_buffer": 0}
        self.oversize_rejected = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise ClusterError("router not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def worker_count(self) -> int:
        """Upstream workers currently routed to."""
        return len(self._upstreams)

    async def start(self, workers: Sequence[Tuple[str, int]]) -> "ClusterRouter":
        """Connect an upstream per worker, build the ring, bind the door."""
        if not workers:
            raise ClusterError("router needs at least one worker")
        self._upstreams = [
            _Upstream(index, host, port) for index, (host, port) in enumerate(workers)
        ]
        for upstream in self._upstreams:
            await upstream.connect()
        self._ring = ConsistentHashRing(len(self._upstreams), self._replicas)
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        return self

    async def aclose(self) -> None:
        """Stop accepting clients and close every upstream connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for upstream in list(self._upstreams) + list(self._next_upstreams or ()):
            await upstream.aclose()

    # -- routing -------------------------------------------------------------

    async def _route(self, username: str) -> _Upstream:
        """The upstream owning *username* right now (parks mid-cutover)."""
        while True:
            index = self._ring.index_for(username)
            if self._next_ring is None:
                return self._upstreams[index]
            if index in self._migrated:
                return self._next_upstreams[self._next_ring.index_for(username)]
            gate = self._gates.get(index)
            if gate is None:
                return self._upstreams[index]
            await gate.wait()  # cutover window: re-evaluate once released

    def _fanout_targets(self) -> List[_Upstream]:
        """Every upstream that currently owns any account."""
        if self._next_upstreams is None:
            return list(self._upstreams)
        old = [
            upstream
            for index, upstream in enumerate(self._upstreams)
            if index not in self._migrated
        ]
        return old + list(self._next_upstreams)

    # -- reshard cooperation (driven by ServingCluster) ----------------------

    async def begin_reshard(self, workers: Sequence[Tuple[str, int]]) -> None:
        """Connect upstreams to the new worker set; routing is unchanged
        until the first :meth:`cutover`."""
        if self._next_ring is not None:
            raise ClusterError("a reshard is already in progress")
        next_upstreams = [
            _Upstream(index, host, port) for index, (host, port) in enumerate(workers)
        ]
        for upstream in next_upstreams:
            await upstream.connect()
        self._next_upstreams = next_upstreams
        self._next_ring = ConsistentHashRing(len(next_upstreams), self._replicas)
        self._migrated = set()

    async def cutover(self, shard_index: int) -> None:
        """Open shard *shard_index*'s cutover window: gate new requests
        for its accounts and wait until its in-flight requests drain —
        after this returns, the parent may migrate the shard's backend."""
        self._gates[shard_index] = asyncio.Event()
        await self._upstreams[shard_index].drain_inflight()

    def complete_shard(self, shard_index: int) -> None:
        """Close the cutover window: the shard's accounts now route
        through the new ring; parked requests resume."""
        self._migrated.add(shard_index)
        self._gates.pop(shard_index).set()

    async def finish_reshard(self) -> None:
        """Swap the new ring in as current and drop the old upstreams."""
        old = self._upstreams
        self._upstreams = self._next_upstreams
        self._ring = self._next_ring
        self._next_upstreams = None
        self._next_ring = None
        self._migrated = set()
        for upstream in old:
            await upstream.aclose()

    # -- client handling -----------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        try:
            await writer.drain()
        except ConnectionError:  # client went away mid-response
            pass

    async def _serve_request(
        self, writer: asyncio.StreamWriter, request: dict
    ) -> None:
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op in ("login", "enroll"):
                upstream = await self._route(str(request.get("user")))
                response = dict(await upstream.request(request))
                response["id"] = request_id
            elif op == "stats":
                replies = await self._fan_out({"op": "stats"})
                response = merge_stats(replies)
                response["id"] = request_id
                response["ok"] = True
                response["workers"] = len(replies)
            elif op == "metrics":
                replies = await self._fan_out({"op": "metrics", "samples": True})
                registry = MetricsRegistry()
                for reply in replies:
                    registry.merge(reply.get("metrics") or {})
                if request.get("format") == "prom":
                    response = {
                        "id": request_id,
                        "ok": True,
                        "prom": registry.render_prometheus(),
                    }
                else:
                    response = {
                        "id": request_id,
                        "ok": True,
                        "metrics": registry.snapshot(
                            include_samples=bool(request.get("samples"))
                        ),
                    }
            elif op == "trace":
                limit = request.get("limit")
                frame: dict = {"op": "trace"}
                if isinstance(limit, int):
                    frame["limit"] = limit
                replies = await self._fan_out(frame)
                spans = [span for reply in replies for span in reply.get("spans", [])]
                spans.sort(key=lambda span: span.get("start") or 0.0)
                if isinstance(limit, int):
                    spans = spans[-limit:]
                response = {"id": request_id, "ok": True, "spans": spans}
            elif op == "ping":
                response = {
                    "id": request_id,
                    "ok": True,
                    "status": "pong",
                    "workers": self.worker_count,
                }
            else:
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": "protocol",
                    "message": f"unknown op {op!r}",
                }
        except ClusterError as exc:
            response = {
                "id": request_id,
                "ok": False,
                "error": "upstream",
                "message": str(exc),
            }
        await self._respond(writer, response)

    async def _fan_out(self, payload: dict) -> List[dict]:
        """One request per live upstream; drops non-ok replies."""
        targets = self._fanout_targets()
        replies = await asyncio.gather(
            *(upstream.request(dict(payload)) for upstream in targets)
        )
        return [reply for reply in replies if reply.get("ok")]

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        transport = writer.transport
        if transport is not None:
            try:
                transport.set_write_buffer_limits(high=self._write_high_water)
            except (AttributeError, ValueError, RuntimeError):
                pass
        lines = LineReader(reader, self._max_request_bytes)
        inflight = asyncio.Semaphore(self._max_pipeline)
        tasks: set = set()

        def _settle(task: asyncio.Task) -> None:
            tasks.discard(task)
            inflight.release()

        try:
            while True:
                if (
                    transport is not None
                    and not writer.is_closing()
                    and transport.get_write_buffer_size() > self._write_high_water
                ):
                    self.backpressure["write_buffer"] += 1
                    try:
                        await writer.drain()
                    except (asyncio.CancelledError, ConnectionError):
                        break
                try:
                    line = await lines.readline()
                except (asyncio.CancelledError, ConnectionError):
                    break
                if line is None:
                    break
                if line is OVERSIZE:
                    self.oversize_rejected += 1
                    await self._respond(
                        writer,
                        {
                            "id": None,
                            "ok": False,
                            "error": "request_too_large",
                            "message": (
                                "request line exceeded "
                                f"{self._max_request_bytes} bytes"
                            ),
                        },
                    )
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._respond(
                        writer,
                        {
                            "id": None,
                            "ok": False,
                            "error": "protocol",
                            "message": f"malformed JSON line: {exc}",
                        },
                    )
                    continue
                if inflight.locked():
                    self.backpressure["pipeline"] += 1
                await inflight.acquire()
                task = asyncio.ensure_future(self._serve_request(writer, request))
                tasks.add(task)
                task.add_done_callback(_settle)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError):
                pass


@dataclass
class ReshardReport:
    """Outcome of one live reshard: what moved and how brief the windows were."""

    old_shards: int
    new_shards: int
    moved: List[int] = field(default_factory=list)
    cutover_seconds: List[float] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def accounts_moved(self) -> int:
        """Total accounts migrated across every old shard."""
        return sum(self.moved)

    @property
    def max_cutover_seconds(self) -> float:
        """The longest per-shard window during which its accounts parked."""
        return max(self.cutover_seconds, default=0.0)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"reshard {self.old_shards}->{self.new_shards}: "
            f"{self.accounts_moved} accounts in {self.total_seconds:.2f}s, "
            f"max cutover window {self.max_cutover_seconds * 1000.0:.1f}ms"
        )


def _copy_meta(template_uri: str, new_uris: Sequence[str]) -> None:
    """Stamp the deployment meta of *template_uri* onto each new shard.

    Runs before the new workers spawn: ``deployed_store`` refuses a
    backend without meta, and the workers open their (still empty) shards
    immediately.  Blocking; executor-run during a live reshard.
    """
    source = backend_from_uri(template_uri)
    try:
        items = source.meta_items()
    finally:
        source.close()
    for uri in new_uris:
        dest = backend_from_uri(uri)
        try:
            for key, value in items:
                dest.put_meta(key, value)
        finally:
            dest.close()


def _migrate_shard(old_uri: str, new_uris: Sequence[str], replicas: int) -> int:
    """Copy one gated old shard's accounts + throttles into the new layout.

    Opens its own connections (the old worker still holds the shard, but
    its traffic is drained and gated; SQLite WAL tolerates the second
    reader) and routes every account through a fresh
    :class:`~repro.passwords.storage.ShardedBackend` over the new shard
    files — ``rebalance(clear=False)`` because earlier shards' migrations
    already live there.  Blocking; executor-run.
    """
    source = backend_from_uri(old_uri)
    dest = ShardedBackend(
        [backend_from_uri(uri) for uri in new_uris], replicas=replicas
    )
    try:
        return rebalance(source, dest, clear=False)
    finally:
        source.close()
        dest.close()


class ServingCluster:
    """N shard-worker processes behind one :class:`ClusterRouter`.

    Two construction shapes:

    * ``ServingCluster(shard_uris=[...])`` — one worker per durable shard
      URI (each must carry deployment meta from ``repro store create``);
      this shape supports :meth:`reshard`.
    * ``ServingCluster(workers=4, users=1_000_000)`` — synthetic soak:
      each worker builds an in-memory store and enrolls its ring slice of
      the deterministic population (see :func:`synthetic_points`), so
      enrollment itself runs in parallel across processes.

    Async lifecycle: ``await start()``, talk to :attr:`address`, ``await
    aclose()``.  Blocking work (process spawn, SQLite migration) runs in
    the default executor so the router keeps serving during a live
    reshard.
    """

    def __init__(
        self,
        shard_uris: Optional[Sequence[str]] = None,
        *,
        workers: int = 0,
        users: int = 0,
        seed: int = 2008,
        scheme: str = "centered",
        tolerance_px: int = 9,
        lockout_failures: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        max_batch: int = 256,
        flush_interval: float = 0.0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        write_high_water: int = DEFAULT_WRITE_HIGH_WATER,
    ) -> None:
        if (shard_uris is None) == (workers <= 0):
            raise ClusterError(
                "pass exactly one of shard_uris=[...] or workers=N (with users=M)"
            )
        self._shard_uris = list(shard_uris) if shard_uris is not None else None
        worker_count = len(self._shard_uris) if self._shard_uris else workers
        self._replicas = replicas
        self._host = host
        self._port = port
        self._write_high_water = write_high_water
        self._specs = [
            WorkerSpec(
                index=index,
                uri=self._shard_uris[index] if self._shard_uris else None,
                host=host,
                shard_count=worker_count,
                replicas=replicas,
                users=users,
                seed=seed,
                scheme=scheme,
                tolerance_px=tolerance_px,
                lockout_failures=lockout_failures,
                max_batch=max_batch,
                flush_interval=flush_interval,
                max_request_bytes=max_request_bytes,
                max_pipeline=max_pipeline,
            )
            for index in range(worker_count)
        ]
        self._handles: List[WorkerHandle] = []
        self._router: Optional[ClusterRouter] = None

    @property
    def worker_count(self) -> int:
        """Worker processes currently serving shards."""
        return len(self._handles) if self._handles else len(self._specs)

    @property
    def address(self) -> Tuple[str, int]:
        """The router's client-facing ``(host, port)``."""
        if self._router is None:
            raise ClusterError("cluster not started")
        return self._router.address

    @property
    def router(self) -> ClusterRouter:
        """The live router (valid after :meth:`start`)."""
        if self._router is None:
            raise ClusterError("cluster not started")
        return self._router

    async def start(self) -> "ServingCluster":
        """Spawn the workers (in parallel), then start the router."""
        loop = asyncio.get_event_loop()
        self._handles = await loop.run_in_executor(None, _spawn_workers, self._specs)
        router = ClusterRouter(
            host=self._host,
            port=self._port,
            replicas=self._replicas,
            max_request_bytes=self._specs[0].max_request_bytes,
            max_pipeline=self._specs[0].max_pipeline,
            write_high_water=self._write_high_water,
        )
        try:
            await router.start([handle.address for handle in self._handles])
        except Exception:
            await loop.run_in_executor(None, _stop_workers, self._handles)
            raise
        self._router = router
        return self

    async def reshard(self, new_shard_uris: Sequence[str]) -> ReshardReport:
        """Grow onto *new_shard_uris* under live traffic, one shard at a time.

        Sequence per old shard: gate its accounts at the router, wait for
        in-flight requests to drain, ``rebalance(clear=False)`` its
        records + throttle state into the new layout, release the gate
        onto the new ring.  Every account has exactly one authoritative
        backend at every instant, so no lockout/throttle transition is
        lost — the drill in ``tests/test_cluster.py`` asserts this against
        a single-backend reference.  Returns a :class:`ReshardReport` with
        per-shard cutover windows.
        """
        if self._shard_uris is None:
            raise ClusterError(
                "resharding requires durable shard URIs (synthetic clusters "
                "have no portable state to migrate)"
            )
        if self._router is None:
            raise ClusterError("cluster not started")
        new_uris = list(new_shard_uris)
        if not new_uris:
            raise ClusterError("reshard needs at least one new shard URI")
        loop = asyncio.get_event_loop()
        begin = time.perf_counter()
        await loop.run_in_executor(None, _copy_meta, self._shard_uris[0], new_uris)
        base = self._specs[0]
        new_specs = [
            replace(base, index=index, uri=uri, shard_count=len(new_uris))
            for index, uri in enumerate(new_uris)
        ]
        new_handles = await loop.run_in_executor(None, _spawn_workers, new_specs)
        await self._router.begin_reshard([handle.address for handle in new_handles])
        report = ReshardReport(old_shards=len(self._shard_uris), new_shards=len(new_uris))
        for index, old_uri in enumerate(self._shard_uris):
            window_begin = time.perf_counter()
            await self._router.cutover(index)
            moved = await loop.run_in_executor(
                None, _migrate_shard, old_uri, new_uris, self._replicas
            )
            self._router.complete_shard(index)
            report.cutover_seconds.append(time.perf_counter() - window_begin)
            report.moved.append(moved)
        await self._router.finish_reshard()
        old_handles = self._handles
        self._handles = new_handles
        self._specs = new_specs
        self._shard_uris = new_uris
        await loop.run_in_executor(None, _stop_workers, old_handles)
        report.total_seconds = time.perf_counter() - begin
        return report

    async def aclose(self) -> None:
        """Close the router, then terminate and reap every worker."""
        if self._router is not None:
            await self._router.aclose()
            self._router = None
        if self._handles:
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(None, _stop_workers, self._handles)
            self._handles = []
