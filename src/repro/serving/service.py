"""Asyncio front-end over the micro-batched verification service.

:class:`~repro.passwords.service.VerificationService` batches logins but is
synchronous: *somebody* has to collect a batch before flushing it.  In a
live deployment that somebody is the event loop — independent clients
arrive as concurrent coroutines, and this module amortizes them into
vectorized kernel calls without any client knowing about the others:

* :meth:`AsyncVerificationService.submit` validates an attempt, enqueues
  it on the underlying sync service, and parks the caller on an
  :class:`asyncio.Future`;
* a flush fires when either ``max_batch`` attempts are pending (size
  trigger, checked synchronously at submit) or ``flush_interval`` seconds
  after the first pending attempt (deadline trigger; an interval of ``0``
  means "the next event-loop pass", which batches everything submitted in
  the current scheduling tick — the lowest-latency policy);
* the sync service's :meth:`~repro.passwords.service.VerificationService.flush`
  returns outcomes **in submission order** (a documented guarantee), so
  futures are resolved positionally — no request ids, no reordering.

Semantics are the scalar ``PasswordStore.login`` loop's, bit-for-bit, in
enqueue order: the property tests in ``tests/test_serving.py`` drive
randomized concurrent interleavings and compare the full decision/lockout
sequence against the scalar reference.  The one structural difference
from the sync service: out-of-image points are validated per request at
:meth:`submit` (raising :class:`~repro.errors.DomainError` to that caller
alone), so one malformed request can never poison the shared batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import DomainError, ParameterError
from repro.geometry.point import Point
from repro.obs import SIZE_BUCKETS, MetricsRegistry, SpanTracer, get_registry
from repro.passwords.service import LoginOutcome, VerificationService
from repro.passwords.store import PasswordStore

__all__ = ["AsyncVerificationService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Counters describing the batching behaviour of one service instance.

    Attributes
    ----------
    submitted:
        Login attempts accepted by :meth:`AsyncVerificationService.submit`.
    decided:
        Attempts whose future has been resolved.
    flushes:
        Number of batch flushes executed.
    size_flushes:
        Flushes triggered by the ``max_batch`` size trigger.
    deadline_flushes:
        Flushes triggered by the ``flush_interval`` deadline timer (the
        remainder, ``flushes - size_flushes - deadline_flushes``, were
        explicit :meth:`~AsyncVerificationService.drain` calls) — lets a
        flood run distinguish size- from deadline-triggered batching.
    largest_batch:
        Largest number of attempts decided by a single flush.
    throttled:
        Attempts refused by the defense rate-limit window (always 0 under
        the neutral :class:`~repro.passwords.defense.DefenseConfig`).
    captcha_challenged:
        Attempts that carried a CAPTCHA challenge (always 0 when the
        ``captcha_after`` knob is off).
    """

    submitted: int = 0
    decided: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    largest_batch: int = 0
    throttled: int = 0
    captcha_challenged: int = 0

    @property
    def mean_batch(self) -> float:
        """Average attempts per flush (0.0 before the first flush)."""
        return self.decided / self.flushes if self.flushes else 0.0


class AsyncVerificationService:
    """Concurrent login front-end amortizing clients into kernel batches.

    Parameters
    ----------
    store:
        The :class:`~repro.passwords.store.PasswordStore` to serve.  A
        private sync :class:`~repro.passwords.service.VerificationService`
        is created over it; the async layer must own that service's queue,
        so don't share one sync service between an async front-end and
        direct callers.
    max_batch:
        Size trigger: a flush fires synchronously as soon as this many
        attempts are pending.
    flush_interval:
        Deadline trigger, in seconds, armed when the first attempt of a
        batch arrives.  ``0.0`` (default) flushes on the next event-loop
        pass — every coroutine that submits during the current tick shares
        one kernel call.
    registry:
        :class:`~repro.obs.MetricsRegistry` receiving the serving-layer
        telemetry (queue-wait histogram, flush-trigger counters, batch
        sizes) and, through the inner sync service, the kernel/hash
        timings.  ``None`` (default) publishes into the process registry;
        pass :data:`~repro.obs.NULL_REGISTRY` for the no-op path.
    tracer:
        Optional :class:`~repro.obs.SpanTracer`.  When enabled, every
        flush emits a ``serving.flush`` root span (annotated with the
        trigger, batch size and kernel/hash seconds) with one
        ``serving.login`` child per parked submit carrying its queue
        wait — the ``repro flood --trace`` surface.  ``None`` disables
        tracing entirely.

    Use it from a running event loop::

        service = AsyncVerificationService(store)
        outcome = await service.login("alice", points)   # parks until flush
    """

    def __init__(
        self,
        store: PasswordStore,
        max_batch: int = 256,
        flush_interval: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if flush_interval < 0:
            raise ParameterError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        registry = registry if registry is not None else get_registry()
        self._service = VerificationService(
            store, max_batch=max_batch, registry=registry
        )
        self._max_batch = max_batch
        self._flush_interval = flush_interval
        # Parked callers: ``(future, n)`` — the future resolves to one
        # outcome (n == 1, from submit) or a list of n outcomes (from
        # submit_many).  Total pending attempts is tracked separately so
        # the size trigger stays O(1).
        self._waiters: List[tuple] = []
        self._pending_attempts = 0
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self.stats = ServiceStats()
        # Neutral deployments skip the per-outcome defense bookkeeping in
        # _flush_now entirely — the hot path stays the undefended one.
        self._count_defense = not store.defense.is_neutral
        # Image bounds hoisted out of the per-submit hot path.
        image = getattr(store.system, "image", None)
        if image is not None:
            self._bounds = (image.width, image.height, image.name)
        else:
            self._bounds = None
        # Telemetry.  Instruments resolve once; on a disabled registry
        # with no tracer, submit/flush skip every telemetry branch (the
        # `_track_times` flag) so the hot path matches the PR-3 shape.
        self._registry = registry
        self._obs_enabled = registry.enabled
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._track_times = self._obs_enabled or self._tracer is not None
        # Queue waits and span timings share one clock; the tracer's wins
        # so an injected VirtualClock stays authoritative in tests.
        self._now = self._tracer.clock if self._tracer else time.perf_counter
        self._submit_times: List[float] = []
        self._obs_submitted = registry.counter(
            "serving_submitted_total",
            help="attempts accepted by submit() (published at flush)",
        )
        self._obs_decided = registry.counter(
            "serving_decided_total", help="attempts whose future resolved"
        )
        self._obs_flush_trigger = {
            trigger: registry.counter(
                "serving_flushes_total",
                help="batch flushes by trigger",
                trigger=trigger,
            )
            for trigger in ("size", "deadline", "drain")
        }
        self._obs_queue_wait = registry.histogram(
            "serving_queue_wait_seconds",
            help="submit-to-flush wait per parked request",
        )
        self._obs_batch_size = registry.histogram(
            "serving_batch_size",
            help="attempts decided per flush",
            buckets=SIZE_BUCKETS,
        )
        self._obs_largest = registry.gauge(
            "serving_largest_batch", help="largest single flush so far"
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this service publishes into."""
        return self._registry

    @property
    def tracer(self) -> Optional[SpanTracer]:
        """The span tracer, if tracing is enabled (else ``None``)."""
        return self._tracer

    @property
    def store(self) -> PasswordStore:
        """The underlying password store."""
        return self._service.store

    @property
    def service(self) -> VerificationService:
        """The sync micro-batching service the async layer drives."""
        return self._service

    @property
    def pending_count(self) -> int:
        """Attempts submitted but not yet flushed."""
        return self._pending_attempts

    # -- intake ---------------------------------------------------------------

    def _validate_points(self, points: Sequence[Point]) -> None:
        """Per-request domain check, mirroring the scalar path.

        The sync service defers out-of-image detection to flush time and
        fails the whole micro-batch; here each request is checked on its
        own so a bad client only fails itself — exactly what the scalar
        ``PasswordStore.login`` would do (raise before touching the
        throttle).
        """
        if self._bounds is None:
            return
        width, height, name = self._bounds
        for point in points:
            coords = point.coords
            if len(coords) != 2:
                continue
            x, y = coords
            if not (0 <= x < width and 0 <= y < height):
                raise DomainError(
                    f"click-point {tuple(coords)!r} outside image "
                    f"{name!r} ({width}x{height})"
                )

    def _arm_or_fire(self, loop: asyncio.AbstractEventLoop) -> None:
        """Apply the flush triggers after an enqueue (hot path)."""
        if self._pending_attempts >= self._max_batch:
            self.stats.size_flushes += 1
            self._flush_now("size")
        elif self._flush_handle is None:
            if self._flush_interval <= 0:
                self._flush_handle = loop.call_soon(self._deadline_flush)
            else:
                self._flush_handle = loop.call_later(
                    self._flush_interval, self._deadline_flush
                )

    def _deadline_flush(self) -> None:
        """Timer-fired flush (the deadline trigger, counted as such)."""
        self.stats.deadline_flushes += 1
        self._flush_now("deadline")

    def submit(self, username: str, points: Sequence[Point]) -> asyncio.Future:
        """Enqueue one attempt; the returned future resolves to its
        :class:`~repro.passwords.service.LoginOutcome`.

        Validation is synchronous and per-request: unknown accounts raise
        :class:`~repro.errors.StoreError`, wrong click counts
        :class:`~repro.errors.VerificationError`, out-of-image points
        :class:`~repro.errors.DomainError` — all from this call, leaving
        the shared batch untouched.  Enqueue order is decision order (the
        property the equivalence tests pin down), and it is established
        here, atomically, before any ``await``.

        Must be called from a running event loop.
        """
        loop = asyncio.get_running_loop()
        self._validate_points(points)
        self._service.submit(username, points)
        future = loop.create_future()
        self._waiters.append((future, 1))
        self._pending_attempts += 1
        self.stats.submitted += 1
        if self._track_times:
            self._submit_times.append(self._now())
        self._arm_or_fire(loop)
        return future

    def submit_many(
        self, attempts: Sequence[tuple]
    ) -> asyncio.Future:
        """Enqueue a pipelined burst of ``(username, points)`` attempts.

        The returned future resolves to a list of outcomes, one per
        attempt in order.  Semantically identical to calling
        :meth:`submit` per attempt (each is decided individually, in
        enqueue order, against the same throttles) but parks the whole
        burst on **one** future — the cheap path for clients that pipeline
        requests.  Validation failures raise before any attempt of the
        burst is enqueued, so a rejected burst leaves no partial state.
        """
        loop = asyncio.get_running_loop()
        for _, points in attempts:
            self._validate_points(points)
        self._service.submit_all(attempts)
        future = loop.create_future()
        self._waiters.append((future, len(attempts)))
        self._pending_attempts += len(attempts)
        self.stats.submitted += len(attempts)
        if self._track_times:
            self._submit_times.append(self._now())
        self._arm_or_fire(loop)
        return future

    async def login(self, username: str, points: Sequence[Point]) -> LoginOutcome:
        """Submit one attempt and wait for its batched decision."""
        return await self.submit(username, points)

    # -- flushing -------------------------------------------------------------

    def _flush_now(self, trigger: str = "drain") -> None:
        """Decide every pending attempt and resolve its future.

        Futures are resolved positionally against the sync service's
        submission-order outcome list.  A failure inside the batched
        decision (which per-request validation should have made
        impossible) is propagated to every parked caller rather than
        swallowed.  *trigger* (``"size"`` / ``"deadline"`` / ``"drain"``)
        only feeds telemetry.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        waiters, self._waiters = self._waiters, []
        times, self._submit_times = self._submit_times, []
        batch_size, self._pending_attempts = self._pending_attempts, 0
        if not waiters:
            return
        self.stats.flushes += 1
        if batch_size > self.stats.largest_batch:
            self.stats.largest_batch = batch_size
        tracer = self._tracer
        span = (
            tracer.start("serving.flush", trigger=trigger, batch_size=batch_size)
            if tracer
            else None
        )
        try:
            outcomes = self._service.flush()
        except Exception as exc:  # pragma: no cover - defensive
            for future, _ in waiters:
                if not future.done():
                    future.set_exception(exc)
            return
        self.stats.decided += len(outcomes)
        if self._track_times:
            now = self._now()
            if self._obs_enabled:
                self._obs_flush_trigger[trigger].inc()
                # The submitted counter is published here, per flush, not
                # per submit — between flushes ``stats_view()`` carries
                # the live ``pending_count`` instead.
                self._obs_submitted.inc(batch_size)
                self._obs_decided.inc(len(outcomes))
                self._obs_batch_size.observe(batch_size)
                self._obs_largest.set_max(batch_size)
                self._obs_queue_wait.observe_many(
                    [now - submitted_at for submitted_at in times]
                )
            if span is not None:
                timings = self._service.last_flush_timings
                if timings is not None:
                    span.annotate(**timings)
                for (_, count), submitted_at in zip(waiters, times):
                    child = span.child(
                        "serving.login",
                        attempts=count,
                        queue_wait_seconds=now - submitted_at,
                    )
                    child.start = submitted_at
                    child.end = now
                span.finish()
        if self._count_defense:
            for outcome in outcomes:
                if outcome.throttled:
                    self.stats.throttled += 1
                if outcome.captcha:
                    self.stats.captcha_challenged += 1
        offset = 0
        for future, count in waiters:
            if count == 1:
                if not future.done():
                    future.set_result(outcomes[offset])
                offset += 1
            else:
                if not future.done():
                    future.set_result(outcomes[offset : offset + count])
                offset += count

    async def drain(self) -> None:
        """Flush any pending attempts and wait until they are decided."""
        waiters = [future for future, _ in self._waiters]
        self._flush_now()
        if waiters:
            await asyncio.gather(*waiters, return_exceptions=True)

    # -- reporting ------------------------------------------------------------

    def stats_view(self) -> dict:
        """The legacy batching counters as one JSON-safe dict.

        This is the server's ``{"op": "stats"}`` payload: the
        :class:`ServiceStats` fields plus the live ``pending_count`` —
        kept as a *view* over the same quantities the registry publishes
        (``serving_submitted_total``, ``serving_flushes_total{trigger=…}``
        and friends; the equivalence is property-tested in
        ``tests/test_obs.py``), so dashboards can consume either surface.
        """
        stats = self.stats
        return {
            "submitted": stats.submitted,
            "decided": stats.decided,
            "pending_count": self.pending_count,
            "flushes": stats.flushes,
            "size_flushes": stats.size_flushes,
            "deadline_flushes": stats.deadline_flushes,
            "largest_batch": stats.largest_batch,
            "mean_batch": round(stats.mean_batch, 2),
            "throttled": stats.throttled,
            "captcha_challenged": stats.captcha_challenged,
        }
