"""Load generator for the serving stack: throughput and tail latency.

The paper's deployment constraint (§5.1) is a server absorbing an online
login flood while throttling per account; survey work on cued-recall
authentication frames server-side verification latency as the operative
cost.  This module makes both measurable:

* :func:`mixed_stream` builds a deterministic legit/attacker attempt mix
  over an enrolled population;
* :func:`flood_service` drives N concurrent client coroutines straight
  into an :class:`~repro.serving.service.AsyncVerificationService`
  (the benchmark shape — no socket noise);
* :func:`flood_server` drives N real TCP connections through the JSONL
  protocol of :class:`~repro.serving.server.LoginServer` (the
  ``repro flood`` CLI shape);

both report a :class:`FloodReport` with throughput, p50/p95/p99 latency
and the accept/reject/locked tally.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.serving.service import AsyncVerificationService

__all__ = ["FloodReport", "percentile", "mixed_stream", "flood_service", "flood_server"]

#: One attempt: ``(username, click_points)``.
Attempt = Tuple[str, Sequence[Point]]


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The *q*-quantile (0..1) of *samples* by nearest-rank on a sorted copy.

    Returns ``None`` for an empty sample set (e.g. a flood where every
    attempt was dropped) — callers render it as ``n/a`` rather than
    formatting a NaN.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.0
    >>> percentile([], 0.5) is None
    True
    """
    if not 0 <= q <= 1:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(math.ceil(q * len(ordered)), 1) - 1
    return ordered[rank]


@dataclass
class FloodReport:
    """Outcome of one flood run.

    Attributes
    ----------
    attempts / clients / seconds:
        Workload shape and wall-clock duration.
    tally:
        Decision counts keyed ``accept`` / ``reject`` / ``locked``.
    latencies_ms:
        Per-attempt submit→decision latency, milliseconds, in completion
        order (the percentile properties digest it).
    trace:
        Completed root-span dicts scraped from the server's
        :class:`~repro.obs.SpanTracer` when the flood ran with tracing
        (``repro flood --trace``); ``None`` otherwise.
        :meth:`trace_summary` digests it.

    The percentile properties return ``None`` when no attempt completed
    (all-dropped floods) and :meth:`summary` renders them as ``n/a``.
    """

    attempts: int
    clients: int
    seconds: float
    tally: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    trace: Optional[List[dict]] = None

    @property
    def throughput(self) -> float:
        """Decided attempts per second."""
        return self.attempts / self.seconds if self.seconds else float("inf")

    @property
    def p50_ms(self) -> Optional[float]:
        """Median per-attempt latency in ms (``None`` without samples)."""
        return percentile(self.latencies_ms, 0.50)

    @property
    def p95_ms(self) -> Optional[float]:
        """95th-percentile latency in ms (``None`` without samples)."""
        return percentile(self.latencies_ms, 0.95)

    @property
    def p99_ms(self) -> Optional[float]:
        """99th-percentile latency in ms (``None`` without samples)."""
        return percentile(self.latencies_ms, 0.99)

    @staticmethod
    def _fmt_ms(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.2f}ms"

    def summary(self) -> str:
        """One-line human-readable digest (CLI and example output)."""
        tally = ", ".join(
            f"{self.tally.get(status, 0)} {status}"
            for status in ("accept", "reject", "locked")
        )
        return (
            f"{self.attempts:,} attempts / {self.clients} clients in "
            f"{self.seconds:.2f}s -> {self.throughput:,.0f} logins/s | "
            f"p50 {self._fmt_ms(self.p50_ms)} p95 {self._fmt_ms(self.p95_ms)}"
            f" | {tally}"
        )

    def trace_summary(self) -> str:
        """Multi-line digest of the captured spans: where time went.

        Aggregates the ``serving.flush`` root spans (and their
        ``serving.login`` children) recorded by the server's tracer into
        a queue-wait vs. kernel-time breakdown, plus per-trigger flush
        counts and the slowest flushes.  Returns a single explanatory
        line when the flood ran without ``--trace``.
        """
        if not self.trace:
            return "no trace captured (run with tracing enabled)"
        flushes = [s for s in self.trace if s.get("name") == "serving.flush"]
        waits: List[float] = []
        kernel = 0.0
        hashing = 0.0
        triggers: Dict[str, int] = {}
        for span in flushes:
            attrs = span.get("attributes", {})
            trigger = str(attrs.get("trigger", "?"))
            triggers[trigger] = triggers.get(trigger, 0) + 1
            kernel += float(attrs.get("kernel_seconds", 0.0) or 0.0)
            hashing += float(attrs.get("hash_seconds", 0.0) or 0.0)
            for child in span.get("children", []):
                wait = child.get("attributes", {}).get("queue_wait_seconds")
                if wait is not None:
                    waits.append(float(wait) * 1000.0)
        trigger_line = ", ".join(
            f"{count} {name}" for name, count in sorted(triggers.items())
        )
        lines = [
            f"trace: {len(flushes)} flush spans retained"
            + (f" ({trigger_line})" if trigger_line else ""),
            (
                "  queue-wait p50 "
                f"{self._fmt_ms(percentile(waits, 0.50))} p95 "
                f"{self._fmt_ms(percentile(waits, 0.95))} p99 "
                f"{self._fmt_ms(percentile(waits, 0.99))} "
                f"over {len(waits)} logins"
            ),
            (
                f"  kernel time {kernel * 1000.0:.2f}ms, "
                f"hash+decide time {hashing * 1000.0:.2f}ms "
                "across retained flushes"
            ),
        ]
        slowest = sorted(
            flushes, key=lambda s: s.get("duration", 0.0) or 0.0, reverse=True
        )[:3]
        for span in slowest:
            attrs = span.get("attributes", {})
            duration = (span.get("duration") or 0.0) * 1000.0
            lines.append(
                f"  slow flush: {duration:.2f}ms "
                f"batch={attrs.get('batch_size', '?')} "
                f"trigger={attrs.get('trigger', '?')}"
            )
        return "\n".join(lines)


def mixed_stream(
    accounts: Dict[str, Sequence[Point]],
    attempts: int,
    wrong_fraction: float = 0.25,
    seed: int = 2008,
    jitter_px: int = 3,
    bounds: Optional[Tuple[int, int]] = None,
) -> List[Attempt]:
    """A deterministic legit/attacker mix over an enrolled population.

    Each attempt targets a round-robin account; a ``wrong_fraction`` slice
    of the stream shifts every click 25 px off (the attacker), the rest
    re-enter the password exactly or with a small within-tolerance jitter
    (the legitimate user).  Deterministic in *seed* so scalar reference
    runs and flood runs see the same stream.

    Pass ``bounds=(width, height)`` to clamp generated points into the
    image domain (enrolled clicks near an edge would otherwise shift out
    of it and draw :class:`~repro.errors.DomainError` instead of a
    decision; a clamped "wrong" attempt may occasionally land within
    tolerance, which only perturbs the mix, not correctness).
    """
    if not accounts:
        raise ValueError("mixed_stream needs at least one enrolled account")
    if not 0 <= wrong_fraction <= 1:
        raise ValueError(f"wrong_fraction must be in [0, 1], got {wrong_fraction}")
    rng = np.random.default_rng(seed)
    names = sorted(accounts)
    if bounds is None:
        clamp = lambda x, y: (x, y)  # noqa: E731 - trivial passthrough
    else:
        width, height = bounds

        def clamp(x: int, y: int) -> Tuple[int, int]:
            return (
                min(max(x, 0), width - 1),
                min(max(y, 0), height - 1),
            )

    stream: List[Attempt] = []
    for index in range(attempts):
        username = names[index % len(names)]
        points = accounts[username]
        if rng.random() < wrong_fraction:  # the attacker's guess
            attempt = [
                Point.xy(*clamp(int(p.x) - 25, int(p.y) + 25)) for p in points
            ]
        elif index % 2:  # within-tolerance re-entry
            attempt = [
                Point.xy(
                    *clamp(
                        int(p.x) + int(rng.integers(-jitter_px, jitter_px + 1)),
                        int(p.y) + int(rng.integers(-jitter_px, jitter_px + 1)),
                    )
                )
                for p in points
            ]
        else:  # exact re-entry
            attempt = list(points)
        stream.append((username, attempt))
    return stream


def _split_round_robin(stream: Sequence[Attempt], clients: int) -> List[List[Attempt]]:
    return [list(stream[offset::clients]) for offset in range(clients)]


async def flood_service(
    service: AsyncVerificationService,
    stream: Sequence[Attempt],
    clients: int = 64,
    window: int = 1,
) -> FloodReport:
    """Drive *stream* through the async service with concurrent coroutines.

    The stream is split round-robin across *clients* coroutine clients;
    each keeps at most *window* requests in flight — ``window=1`` is the
    fully closed loop (one ``submit``/await per attempt), larger windows
    pipeline a burst through one
    :meth:`~repro.serving.service.AsyncVerificationService.submit_many`
    future.  Batching is emergent either way: clients know nothing of
    each other, the service's flush triggers do the amortizing.
    """
    report = FloodReport(attempts=len(stream), clients=clients, seconds=0.0)
    tally = report.tally
    latencies = report.latencies_ms
    perf_counter = time.perf_counter

    async def client(attempts: List[Attempt]) -> None:
        if window == 1:
            submit = service.submit
            for username, pts in attempts:
                begin = perf_counter()
                outcome = await submit(username, pts)
                latencies.append((perf_counter() - begin) * 1000.0)
                tally[outcome.status] = tally.get(outcome.status, 0) + 1
            return
        for start in range(0, len(attempts), window):
            chunk = attempts[start : start + window]
            begin = perf_counter()
            outcomes = await service.submit_many(chunk)
            elapsed_ms = (perf_counter() - begin) * 1000.0
            for outcome in outcomes:
                tally[outcome.status] = tally.get(outcome.status, 0) + 1
                latencies.append(elapsed_ms)

    begin = perf_counter()
    await asyncio.gather(*(client(part) for part in _split_round_robin(stream, clients)))
    report.seconds = perf_counter() - begin
    return report


def _login_line(request_id: int, username: str, points: Sequence[Point]) -> bytes:
    """One encoded JSONL login request (shared by all flood clients)."""
    return json.dumps(
        {
            "op": "login",
            "id": request_id,
            "user": username,
            "points": [[int(p.x), int(p.y)] for p in points],
        },
        separators=(",", ":"),
    ).encode() + b"\n"


async def flood_server(
    host: str,
    port: int,
    stream: Sequence[Attempt],
    clients: int = 16,
    pipeline_depth: int = 1,
) -> FloodReport:
    """Drive *stream* through a live :class:`~repro.serving.server.LoginServer`
    over real TCP connections speaking the JSONL protocol.

    The stream splits round-robin across *clients* connections.
    ``pipeline_depth=1`` is the closed loop (send one login line, await
    its response line); deeper values write a burst of ``pipeline_depth``
    lines before reading the burst's responses — the shape that exercises
    the server's bounded-pipelining and write-buffer backpressure paths
    (``repro flood --pipeline-depth``).  Per-attempt latency in a burst
    is measured from the burst's first write to that response's arrival
    (responses may interleave; the protocol correlates by ``id``).
    Concurrency across connections is what fills the server's batches.
    """
    if pipeline_depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
    report = FloodReport(attempts=len(stream), clients=clients, seconds=0.0)
    tally = report.tally
    latencies = report.latencies_ms
    perf_counter = time.perf_counter

    async def client(attempts: List[Attempt]) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for start in range(0, len(attempts), pipeline_depth):
                chunk = attempts[start : start + pipeline_depth]
                burst = b"".join(
                    _login_line(start + offset, username, points)
                    for offset, (username, points) in enumerate(chunk)
                )
                begin = perf_counter()
                writer.write(burst)
                received = 0
                alive = True
                try:
                    await writer.drain()
                except ConnectionError:
                    alive = False
                while alive and received < len(chunk):
                    try:
                        raw = await reader.readline()
                    except ConnectionError:
                        raw = b""
                    if not raw:
                        alive = False
                        break
                    response = json.loads(raw)
                    latencies.append((perf_counter() - begin) * 1000.0)
                    status = response.get("status") if response.get("ok") else "error"
                    tally[status] = tally.get(status, 0) + 1
                    received += 1
                if not alive:
                    # Server went away mid-flood: count this burst's missing
                    # responses and every unsent attempt as dropped instead
                    # of crashing the run.
                    dropped = len(attempts) - start - received
                    tally["dropped"] = tally.get("dropped", 0) + dropped
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - server already gone
                pass

    begin = perf_counter()
    await asyncio.gather(*(client(part) for part in _split_round_robin(stream, clients)))
    report.seconds = perf_counter() - begin
    return report
