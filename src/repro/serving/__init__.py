"""Async authentication front-end over the sharded password store.

The serving layer is the deployment shape of the paper's §5.1 server: a
flood of independent online login attempts, amortized into vectorized
verification batches while per-account throttling stays bit-for-bit
scalar-equivalent.

* :class:`~repro.serving.service.AsyncVerificationService` — concurrent
  login coroutines park on futures; a size-or-deadline trigger flushes the
  shared :class:`~repro.passwords.service.VerificationService` batch;
* :class:`~repro.serving.server.LoginServer` — asyncio TCP server speaking
  a JSON-lines protocol (``repro serve``), with per-connection hardening
  (request-size limits, bounded pipelining, slow-client backpressure);
* :mod:`~repro.serving.cluster` — shard-per-process cluster: one worker
  process per shard behind a ring-routing :class:`ClusterRouter`, with
  online resharding (``repro cluster``, ``make cluster-bench``);
* :mod:`~repro.serving.flood` — load generation with throughput and
  p50/p95 latency reporting (``repro flood``,
  ``benchmarks/test_bench_serving.py``).

See the "Serving layer" section of ``docs/architecture.md`` for the
queue → flush trigger → kernel batch → futures pipeline and the
router → ring → worker-process diagram.
"""

from repro.serving.cluster import (
    ClusterRouter,
    ReshardReport,
    ServingCluster,
    WorkerSpec,
    cluster_username,
    default_cluster_workers,
    merge_stats,
    synthetic_points,
)
from repro.serving.flood import (
    FloodReport,
    flood_server,
    flood_service,
    mixed_stream,
    percentile,
)
from repro.serving.server import LineReader, LoginServer, OVERSIZE, parse_points
from repro.serving.service import AsyncVerificationService, ServiceStats

__all__ = [
    "AsyncVerificationService",
    "ClusterRouter",
    "FloodReport",
    "LineReader",
    "LoginServer",
    "OVERSIZE",
    "ReshardReport",
    "ServiceStats",
    "ServingCluster",
    "WorkerSpec",
    "cluster_username",
    "default_cluster_workers",
    "flood_server",
    "flood_service",
    "merge_stats",
    "mixed_stream",
    "parse_points",
    "percentile",
    "synthetic_points",
]
