"""Asyncio TCP server speaking a JSON-lines login protocol.

One request per line, one JSON object per request; one response line per
request, correlated by the client-chosen ``id`` (responses to pipelined
requests may interleave — every request is handled as its own task, and
logins park on the shared :class:`~repro.serving.service.AsyncVerificationService`
batch).  Operations:

``{"op": "login", "id": 1, "user": "u7", "points": [[x, y], ...]}``
    One throttled login attempt.  Response
    ``{"id": 1, "ok": true, "status": "accept" | "reject" | "locked" |
    "throttled"}``; a ``"captcha": true`` field is added when the
    deployment's :class:`~repro.passwords.defense.DefenseConfig` has
    challenged the attempt (absent otherwise, so the neutral-defense
    protocol is byte-identical to the undefended one).
``{"op": "enroll", "id": 2, "user": "new", "points": [[x, y], ...]}``
    Register an account (scalar path, like the sync service).
``{"op": "stats", "id": 3}``
    Batching counters (submitted/decided/pending/flushes by trigger/mean
    batch) plus account count — a live view of how well the flood is
    amortizing.  Since the telemetry PR this is a thin view over the
    metrics registry's serving series (see ``op: metrics``).
``{"op": "metrics", "id": 4}``
    Full :class:`~repro.obs.MetricsRegistry` snapshot — every counter,
    gauge and histogram (exact p50/p95/p99) the process has published,
    serving and attack telemetry alike.  Add ``"format": "prom"`` for
    Prometheus text exposition in a ``"prom"`` field instead.  The CLI
    scraper is ``repro metrics``.
``{"op": "trace", "id": 5, "limit": 10}``
    Recent completed root spans from the server's
    :class:`~repro.obs.SpanTracer` (empty list when tracing is off).
``{"op": "ping", "id": 6}``
    Liveness probe.

Failures come back as ``{"id": ..., "ok": false, "error": "<ErrorClass>",
"message": "..."}`` — library errors (unknown account, wrong click count,
out-of-image point) fail only their own request; malformed JSON fails the
line it arrived on.  The CLI front door is ``repro serve URI``; the
matching load generator is :mod:`repro.serving.flood` / ``repro flood``.

Since frames now also cross process boundaries (the shard-per-process
cluster in :mod:`repro.serving.cluster` speaks this protocol upstream),
the server enforces three hardening contracts per connection:

* **request-size limit** — a line longer than ``max_request_bytes`` gets
  a structured ``{"error": "request_too_large"}`` reply and the
  connection survives (the oversize line is discarded through its
  newline; previously ``reader.readline()`` raised out of the handler
  and killed the connection silently);
* **bounded pipelining** — at most ``max_pipeline`` requests in flight
  per connection; the reader parks until the count drains;
* **slow-client backpressure** — when a client stops reading and the
  connection's write buffer exceeds the high-water mark, the server
  stops reading further requests from that connection until the buffer
  drains, without stalling other connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Sequence, Tuple, Union

from repro.errors import ParameterError, ReproError
from repro.geometry.point import Point
from repro.obs import MetricsRegistry, SpanTracer, get_registry
from repro.passwords.store import PasswordStore
from repro.serving.service import AsyncVerificationService

__all__ = ["LineReader", "LoginServer", "OVERSIZE", "parse_points"]

#: Default per-request size limit (bytes), matching asyncio's historical
#: 64 KiB stream limit that oversize lines used to trip over.
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024

#: Default cap on in-flight pipelined requests per connection.
DEFAULT_MAX_PIPELINE = 128

#: Default write-buffer high-water mark (bytes) above which the server
#: stops reading from a slow client until its responses drain.
DEFAULT_WRITE_HIGH_WATER = 64 * 1024


class _OversizeLine:
    """Sentinel type for :data:`OVERSIZE` (see :class:`LineReader`)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<OVERSIZE>"


#: Returned by :meth:`LineReader.readline` in place of a line that
#: exceeded the size limit.  The line is consumed; the stream stays
#: usable for the next request.
OVERSIZE = _OversizeLine()


class LineReader:
    """Size-limited line framing over an :class:`asyncio.StreamReader`.

    ``StreamReader.readline()`` enforces its limit by *raising* (and
    leaves the tail of the oversize line in the stream as garbage), which
    is how the server used to lose connections.  This reader owns its own
    buffer: a line within ``max_line_bytes`` comes back as ``bytes``
    (newline stripped), an oversize line is swallowed through its
    terminating newline and reported as the :data:`OVERSIZE` sentinel,
    and EOF is ``None``.  Both the login server and the cluster router
    frame their sockets through it.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_line_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        chunk_size: int = 65536,
    ) -> None:
        if max_line_bytes < 1:
            raise ValueError(f"max_line_bytes must be >= 1, got {max_line_bytes}")
        self._reader = reader
        self._max = max_line_bytes
        self._chunk = max(chunk_size, 1)
        self._buffer = bytearray()
        self._eof = False

    async def readline(self) -> Union[bytes, _OversizeLine, None]:
        """The next line, :data:`OVERSIZE`, or ``None`` at EOF."""
        search_from = 0
        while True:
            index = self._buffer.find(b"\n", search_from)
            if index >= 0:
                if index > self._max:
                    del self._buffer[: index + 1]
                    return OVERSIZE
                line = bytes(self._buffer[:index])
                del self._buffer[: index + 1]
                return line
            if len(self._buffer) > self._max:
                await self._discard_line()
                return OVERSIZE
            if self._eof:
                if self._buffer:  # unterminated final line
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line
                return None
            search_from = len(self._buffer)
            chunk = await self._reader.read(self._chunk)
            if not chunk:
                self._eof = True
            else:
                self._buffer.extend(chunk)

    async def _discard_line(self) -> None:
        """Drop buffered bytes up to and including the next newline.

        Anything after that newline is kept — it is the start of the next
        (possibly well-formed) request.
        """
        while True:
            index = self._buffer.find(b"\n")
            if index >= 0:
                del self._buffer[: index + 1]
                return
            self._buffer.clear()
            chunk = await self._reader.read(self._chunk)
            if not chunk:
                self._eof = True
                return
            self._buffer.extend(chunk)


def parse_points(payload: object) -> Sequence[Point]:
    """Convert a JSON ``[[x, y], ...]`` payload into click-points.

    Raises :class:`ValueError` on anything that is not a list of 2-number
    pairs — protocol-level garbage, reported to the client as an
    ``error: "protocol"`` response rather than a library exception.
    """
    if not isinstance(payload, list) or not payload:
        raise ValueError(f"points must be a non-empty list, got {payload!r}")
    points = []
    for pair in payload:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"each point must be an [x, y] pair, got {pair!r}")
        x, y = pair
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            raise ValueError(f"coordinates must be numbers, got {pair!r}")
        points.append(Point.xy(int(x), int(y)))
    return points


class LoginServer:
    """A TCP front door over one store's async verification service.

    Parameters
    ----------
    store:
        The store to serve; a fresh
        :class:`~repro.serving.service.AsyncVerificationService` is built
        over it with the given batching knobs.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port — read
        :attr:`address` after :meth:`start` (how the tests and the
        self-hosted ``repro flood`` run).
    max_batch / flush_interval:
        Forwarded to the async service (size / deadline flush triggers).
    max_request_bytes:
        Per-request size limit; a longer line is answered with a
        structured ``{"error": "request_too_large"}`` reply and the
        connection survives.
    max_pipeline:
        Cap on in-flight pipelined requests per connection — the reader
        parks until the count drains, bounding per-connection memory.
    write_high_water:
        Write-buffer size (bytes) above which the server stops reading
        further requests from a slow client until its responses drain.
        Backpressure pauses are counted per reason in
        :attr:`backpressure` and in
        ``server_backpressure_total{reason=...}``.
    registry / tracer:
        Telemetry sinks, forwarded to the async service.  ``registry``
        defaults to the process registry (:func:`repro.obs.get_registry`);
        it backs the ``metrics`` op and the per-op request counters.
        ``tracer`` is off by default — pass a
        :class:`~repro.obs.SpanTracer` to record per-flush span trees
        served by the ``trace`` op (``repro flood --trace`` does this).
    """

    def __init__(
        self,
        store: PasswordStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 256,
        flush_interval: float = 0.0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        write_high_water: int = DEFAULT_WRITE_HIGH_WATER,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if max_request_bytes < 1:
            raise ParameterError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        if max_pipeline < 1:
            raise ParameterError(f"max_pipeline must be >= 1, got {max_pipeline}")
        if write_high_water < 1:
            raise ParameterError(f"write_high_water must be >= 1, got {write_high_water}")
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer
        self.service = AsyncVerificationService(
            store,
            max_batch=max_batch,
            flush_interval=flush_interval,
            registry=self.registry,
            tracer=tracer,
        )
        self._host = host
        self._port = port
        self._max_request_bytes = max_request_bytes
        self._max_pipeline = max_pipeline
        self._write_high_water = write_high_water
        self._server: Optional[asyncio.base_events.Server] = None
        self.connections_served = 0
        #: Backpressure pauses by reason — ``"pipeline"`` (in-flight cap
        #: reached) and ``"write_buffer"`` (slow client above high-water).
        self.backpressure = {"pipeline": 0, "write_buffer": 0}
        self.oversize_rejected = 0
        if self.registry.enabled:
            self._obs_connections = self.registry.counter(
                "server_connections_total",
                help="TCP connections accepted by the login server",
            )
            self._obs_requests: dict = {}
            self._obs_backpressure = {
                reason: self.registry.counter(
                    "server_backpressure_total",
                    help="reader pauses from per-connection flow control",
                    reason=reason,
                )
                for reason in ("pipeline", "write_buffer")
            }
            self._obs_oversize = self.registry.counter(
                "server_oversize_total",
                help="requests rejected for exceeding max_request_bytes",
            )
        else:
            self._obs_connections = None
            self._obs_requests = None
            self._obs_backpressure = None
            self._obs_oversize = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "LoginServer":
        """Bind and start accepting connections (returns self)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections and decide any parked attempts."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()

    # -- request handling ----------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        # One write() per complete line keeps concurrent responses whole.
        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        try:
            await writer.drain()
        except ConnectionError:  # client went away mid-response
            pass

    def _count_request(self, op: object) -> None:
        """Bump ``server_requests_total{op=...}`` (cached per op name)."""
        if self._obs_requests is None:
            return
        key = op if isinstance(op, str) else "invalid"
        counter = self._obs_requests.get(key)
        if counter is None:
            counter = self._obs_requests[key] = self.registry.counter(
                "server_requests_total",
                help="protocol requests handled, by op",
                op=key,
            )
        counter.inc()

    def _count_backpressure(self, reason: str) -> None:
        """Record one reader pause (plain dict + registry counter)."""
        self.backpressure[reason] += 1
        if self._obs_backpressure is not None:
            self._obs_backpressure[reason].inc()

    async def _handle_request(
        self, writer: asyncio.StreamWriter, request: dict
    ) -> None:
        request_id = request.get("id")
        op = request.get("op")
        self._count_request(op)
        try:
            if op == "login":
                points = parse_points(request.get("points"))
                outcome = await self.service.login(str(request.get("user")), points)
                response = {"id": request_id, "ok": True, "status": outcome.status}
                if outcome.captcha:
                    response["captcha"] = True
            elif op == "enroll":
                points = parse_points(request.get("points"))
                self.service.service.enroll(str(request.get("user")), points)
                response = {"id": request_id, "ok": True, "status": "enrolled"}
            elif op == "stats":
                response = {"id": request_id, "ok": True}
                response.update(self.service.stats_view())
                response["accounts"] = len(self.service.store.usernames)
                response["defense"] = self.service.store.defense.describe()
            elif op == "metrics":
                if request.get("format") == "prom":
                    response = {
                        "id": request_id,
                        "ok": True,
                        "prom": self.registry.render_prometheus(),
                    }
                else:
                    response = {
                        "id": request_id,
                        "ok": True,
                        "metrics": self.registry.snapshot(
                            include_samples=bool(request.get("samples"))
                        ),
                    }
            elif op == "trace":
                limit = request.get("limit")
                spans = (
                    self.tracer.recent(limit if isinstance(limit, int) else None)
                    if self.tracer is not None
                    else []
                )
                response = {"id": request_id, "ok": True, "spans": spans}
            elif op == "ping":
                response = {"id": request_id, "ok": True, "status": "pong"}
            else:
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": "protocol",
                    "message": f"unknown op {op!r}",
                }
        except ReproError as exc:
            response = {
                "id": request_id,
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        except ValueError as exc:
            response = {
                "id": request_id,
                "ok": False,
                "error": "protocol",
                "message": str(exc),
            }
        await self._respond(writer, response)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        if self._obs_connections is not None:
            self._obs_connections.inc()
        transport = writer.transport
        if transport is not None:
            try:
                transport.set_write_buffer_limits(high=self._write_high_water)
            except (AttributeError, ValueError, RuntimeError):
                pass  # exotic transports without buffer limits
        lines = LineReader(reader, self._max_request_bytes)
        inflight = asyncio.Semaphore(self._max_pipeline)
        # Only in-flight requests are tracked: completed tasks remove
        # themselves, so a long-lived pipelining connection doesn't
        # accumulate one Task object per request it ever made.
        tasks: set = set()

        def _settle(task: asyncio.Task) -> None:
            tasks.discard(task)
            inflight.release()

        try:
            while True:
                # Slow-client backpressure: responses are piling up faster
                # than this client reads them — park the reader (only this
                # connection) until the write buffer drains.
                if (
                    transport is not None
                    and not writer.is_closing()
                    and transport.get_write_buffer_size() > self._write_high_water
                ):
                    self._count_backpressure("write_buffer")
                    try:
                        await writer.drain()
                    except (asyncio.CancelledError, ConnectionError):
                        break
                try:
                    line = await lines.readline()
                except (asyncio.CancelledError, ConnectionError):
                    # Server shutdown (handler task cancelled) or client
                    # reset: stop reading, settle in-flight requests below.
                    break
                if line is None:
                    break
                if line is OVERSIZE:
                    self.oversize_rejected += 1
                    if self._obs_oversize is not None:
                        self._obs_oversize.inc()
                    await self._respond(
                        writer,
                        {
                            "id": None,
                            "ok": False,
                            "error": "request_too_large",
                            "message": (
                                "request line exceeded "
                                f"{self._max_request_bytes} bytes"
                            ),
                        },
                    )
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._respond(
                        writer,
                        {
                            "id": None,
                            "ok": False,
                            "error": "protocol",
                            "message": f"malformed JSON line: {exc}",
                        },
                    )
                    continue
                # Bounded pipelining: cap in-flight requests on this
                # connection; the reader parks here until one drains.
                if inflight.locked():
                    self._count_backpressure("pipeline")
                await inflight.acquire()
                # Each request is its own task so pipelined logins from one
                # connection land in the same batch instead of serializing.
                task = asyncio.ensure_future(self._handle_request(writer, request))
                tasks.add(task)
                task.add_done_callback(_settle)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError):
                pass  # loop teardown or client already gone
