"""repro — reproduction of *Centered Discretization with Application to
Graphical Passwords* (Chiasson, Srinivasan, Biddle, van Oorschot; USENIX
UPSEC 2008).

The library implements:

* the paper's contribution, **Centered Discretization**, in 1-D/2-D/n-D;
* its baseline, **Robust Discretization** (Birget et al. 2006), plus a
  naive static grid;
* the storage layer (clear grid identifiers + salted iterated hash);
* click-based graphical password systems (PassPoints, CCP, PCCP) built on
  any discretization scheme;
* a simulated user-study substrate standing in for the paper's
  191-participant field study;
* the paper's full evaluation: false-accept/false-reject measurement
  (Tables 1–2), theoretical password space (Table 3), and human-seeded
  offline dictionary attacks (Figures 7–8), with ablations;
* a NumPy-vectorized batch engine (:mod:`repro.core.batch`) that runs the
  discretization kernels over ``(N, dim)`` arrays of click-points for
  attack simulation and analysis at scale.

Quickstart::

    from repro import CenteredDiscretization, Point

    scheme = CenteredDiscretization.for_pixel_tolerance(dim=2, tolerance_px=9)
    enrolled = scheme.enroll(Point.xy(127, 83))
    scheme.accepts(enrolled, Point.xy(130, 80))   # True: within 9 px
    scheme.accepts(enrolled, Point.xy(140, 83))   # False: 13 px away
"""

from repro._version import __version__
from repro.core import (
    BatchDiscretization,
    CenteredDiscretization,
    Discretization,
    DiscretizationScheme,
    GridSelection,
    Outcome,
    RobustDiscretization,
    StaticGridScheme,
    acceptance_region_batch,
    discretize_batch,
    verify_batch,
    worst_case_geometry,
)
from repro.crypto import Hasher, VerificationRecord, make_record
from repro.errors import ReproError
from repro.geometry import Box, Grid, Point, centered_box

__all__ = [
    "BatchDiscretization",
    "Box",
    "CenteredDiscretization",
    "Discretization",
    "DiscretizationScheme",
    "Grid",
    "GridSelection",
    "Hasher",
    "Outcome",
    "Point",
    "ReproError",
    "RobustDiscretization",
    "StaticGridScheme",
    "VerificationRecord",
    "__version__",
    "acceptance_region_batch",
    "centered_box",
    "discretize_batch",
    "make_record",
    "verify_batch",
    "worst_case_geometry",
]
