"""Geometry substrate: points, grids, boxes and metrics.

This subpackage contains the dimension-generic geometric machinery that the
discretization schemes (:mod:`repro.core`) are built on.  Nothing here knows
about passwords or images; it is pure real/rational geometry.
"""

from repro.geometry.grid import CellIndex, Grid
from repro.geometry.metrics import (
    Metric,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    squared_euclidean,
)
from repro.geometry.numbers import (
    RealLike,
    as_exact,
    centered_pixel_tolerance_for_grid_size,
    centered_r_for_grid_size,
    floor_div,
    floor_mod,
    grid_size_for_pixel_tolerance,
    is_real,
    pixel_tolerance_for_r,
    r_for_pixel_tolerance,
    robust_r_for_grid_size,
    to_float,
    validate_positive,
    validate_real,
)
from repro.geometry.point import Point
from repro.geometry.region import Box, centered_box

__all__ = [
    "Box",
    "CellIndex",
    "Grid",
    "Metric",
    "Point",
    "RealLike",
    "as_exact",
    "centered_box",
    "centered_pixel_tolerance_for_grid_size",
    "centered_r_for_grid_size",
    "chebyshev",
    "euclidean",
    "floor_div",
    "floor_mod",
    "get_metric",
    "grid_size_for_pixel_tolerance",
    "is_real",
    "manhattan",
    "pixel_tolerance_for_r",
    "r_for_pixel_tolerance",
    "robust_r_for_grid_size",
    "squared_euclidean",
    "to_float",
    "validate_positive",
    "validate_real",
]
