"""Distance metrics over :class:`~repro.geometry.point.Point`.

The tolerance regions in click-based graphical passwords are axis-aligned
squares, so the natural acceptance metric is the **Chebyshev** (L∞) distance:
a login click is inside the centered-tolerance square of side 2t+1 around the
original click iff its Chebyshev distance is ≤ t.  Euclidean and Manhattan
distances are provided for the study analytics (click-accuracy statistics,
hotspot clustering).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.geometry.numbers import RealLike, to_float
from repro.geometry.point import Point

__all__ = [
    "chebyshev",
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "Metric",
    "get_metric",
]

#: Signature shared by all metrics in this module.
Metric = Callable[[Point, Point], float]


def chebyshev(a: Point, b: Point) -> RealLike:
    """L∞ distance: the maximum per-axis absolute difference.

    Exact when both points have exact coordinates.  This is the metric under
    which a centered-tolerance *square* is a ball.

    >>> chebyshev(Point.xy(0, 0), Point.xy(3, -7))
    7
    """
    diff = a - b
    return max(abs(c) for c in diff.coords)


def manhattan(a: Point, b: Point) -> RealLike:
    """L1 distance: the sum of per-axis absolute differences."""
    diff = a - b
    return sum(abs(c) for c in diff.coords)


def squared_euclidean(a: Point, b: Point) -> RealLike:
    """Squared L2 distance (exact for exact inputs; avoids the sqrt)."""
    diff = a - b
    return sum(c * c for c in diff.coords)


def euclidean(a: Point, b: Point) -> float:
    """L2 distance as a float."""
    return math.sqrt(to_float(squared_euclidean(a, b)))


_METRICS: dict[str, Metric] = {
    "chebyshev": chebyshev,  # type: ignore[dict-item]
    "euclidean": euclidean,
    "manhattan": manhattan,  # type: ignore[dict-item]
}


def get_metric(name: str) -> Metric:
    """Look up a metric by name (``chebyshev``, ``euclidean``, ``manhattan``).

    Raises :class:`KeyError` with the list of known names on a miss.
    """
    try:
        return _METRICS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None
