"""Numeric helpers shared by the geometry and discretization code.

The discretization algorithms in this library follow the paper in working
over the *reals*: coordinates may be integers (pixel data), floats, or exact
rationals (:class:`fractions.Fraction`).  Exact rationals matter because the
paper's tables imply fractional tolerances (a 13x13 Robust-Discretization
square has r = 13/6) and we want boundary comparisons to be exact rather
than subject to binary floating-point wobble.  The paper itself notes: "We
used real numbers for our computations and comparisons to minimize rounding
errors."

This module centralizes:

* the :data:`RealLike` union accepted everywhere,
* conversion into exact :class:`~fractions.Fraction` arithmetic,
* floor-division and modulo that behave identically for ints, floats and
  Fractions (Python's ``//`` and ``%`` already do; we wrap them with
  validation and give them names matching the paper's formulas),
* the pixel-tolerance convention of the paper's footnote 2.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from repro.errors import ParameterError

#: Any scalar the discretization math accepts.  ``bool`` is deliberately
#: excluded by validation (it is an ``int`` subclass but almost always a bug
#: when used as a coordinate).
RealLike = Union[int, float, Fraction]

__all__ = [
    "RealLike",
    "as_exact",
    "is_real",
    "validate_real",
    "validate_positive",
    "floor_div",
    "floor_mod",
    "r_for_pixel_tolerance",
    "pixel_tolerance_for_r",
    "grid_size_for_pixel_tolerance",
    "centered_r_for_grid_size",
    "centered_pixel_tolerance_for_grid_size",
    "robust_r_for_grid_size",
    "to_float",
]


def is_real(value: object) -> bool:
    """Return ``True`` when *value* is an accepted real scalar.

    Booleans are rejected even though ``bool`` subclasses ``int``: a
    coordinate of ``True`` is a bug, not a pixel.  NaN floats are rejected
    because every comparison against them is silently false, which would turn
    algorithmic errors into wrong-but-plausible results.
    """
    if isinstance(value, bool):
        return False
    if isinstance(value, float):
        return math.isfinite(value)
    return isinstance(value, (int, Fraction))


def validate_real(value: object, name: str = "value") -> RealLike:
    """Validate that *value* is a finite real scalar and return it.

    Raises :class:`~repro.errors.ParameterError` otherwise.  The *name* is
    used in the error message so callers can point at the offending
    parameter.
    """
    if not is_real(value):
        raise ParameterError(
            f"{name} must be an int, finite float, or Fraction, "
            f"got {value!r} of type {type(value).__name__}"
        )
    return value  # type: ignore[return-value]


def validate_positive(value: object, name: str = "value") -> RealLike:
    """Validate that *value* is a strictly positive real scalar."""
    real = validate_real(value, name)
    if real <= 0:
        raise ParameterError(f"{name} must be > 0, got {real!r}")
    return real


def as_exact(value: RealLike) -> Union[int, Fraction]:
    """Convert *value* to exact arithmetic (``int`` or ``Fraction``).

    Floats are converted through :meth:`Fraction.from_float`, i.e. to the
    exact binary rational they already represent; no decimal rounding is
    applied.  Integers pass through unchanged, and integral Fractions are
    normalized back to ``int`` for cheaper arithmetic.

    >>> as_exact(0.5)
    Fraction(1, 2)
    >>> as_exact(Fraction(6, 3))
    2
    """
    validate_real(value, "value")
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


def floor_div(numerator: RealLike, denominator: RealLike) -> int:
    """Return ``floor(numerator / denominator)`` as an ``int``.

    This is the paper's ``⌊.⌋`` used in ``i = ⌊(x − r)/2r⌋``.  Python's
    ``//`` already implements mathematical floor division for ints, floats
    and Fractions; we normalize the result to ``int`` (``float.__floordiv__``
    returns a float).
    """
    validate_real(numerator, "numerator")
    validate_positive(denominator, "denominator")
    return int(numerator // denominator)


def floor_mod(numerator: RealLike, denominator: RealLike) -> RealLike:
    """Return ``numerator mod denominator`` in ``[0, denominator)``.

    This is the paper's ``mod`` in ``d = (x − r) mod 2r``.  Python's ``%``
    has exactly the required sign convention for a positive modulus.
    """
    validate_real(numerator, "numerator")
    validate_positive(denominator, "denominator")
    return numerator % denominator


def r_for_pixel_tolerance(tolerance_px: int) -> Fraction:
    """Map an integer pixel tolerance to the real tolerance ``r``.

    Paper, footnote 2: "In practice when dealing with graphical passwords
    and pixels, we add 0.5 to r to arrange for an odd number of pixels" —
    a desired tolerance of t pixels uses r = t + ½ so the segment width
    2r = 2t + 1 is an odd pixel count with the original pixel exactly
    centered.

    >>> r_for_pixel_tolerance(9)
    Fraction(19, 2)
    """
    if isinstance(tolerance_px, bool) or not isinstance(tolerance_px, int):
        raise ParameterError(
            f"tolerance_px must be an int, got {tolerance_px!r}"
        )
    if tolerance_px < 0:
        raise ParameterError(f"tolerance_px must be >= 0, got {tolerance_px}")
    return Fraction(2 * tolerance_px + 1, 2)


def pixel_tolerance_for_r(r: RealLike) -> int:
    """Inverse of :func:`r_for_pixel_tolerance` for exact half-integers.

    Raises :class:`~repro.errors.ParameterError` when *r* is not of the form
    t + ½ for a non-negative integer t.
    """
    exact = as_exact(validate_positive(r, "r"))
    doubled = exact * 2 - 1
    if isinstance(doubled, Fraction):
        if doubled.denominator != 1:
            raise ParameterError(f"r={r!r} is not a half-integer tolerance")
        doubled = int(doubled)
    if doubled % 2 != 0 or doubled < 0:
        raise ParameterError(f"r={r!r} is not of the form t + 1/2, t >= 0")
    return doubled // 2


def grid_size_for_pixel_tolerance(tolerance_px: int) -> int:
    """Centered-Discretization square side (in pixels) for a pixel tolerance.

    With r = t + ½ the segment width is 2r = 2t + 1.

    >>> grid_size_for_pixel_tolerance(9)
    19
    """
    r = r_for_pixel_tolerance(tolerance_px)  # validates tolerance_px
    return int(2 * r)


def centered_r_for_grid_size(grid_size: int) -> Fraction:
    """Guaranteed tolerance r of Centered Discretization for a square side.

    Inverse of the 2r = side relation: r = side / 2.  For an odd pixel side
    s = 2t + 1 this is t + ½, i.e. an effective integer pixel tolerance of
    (s − 1) / 2 — the "Centered Discr. r (pixels)" column of the paper's
    Table 3 (9x9 → 4, 13x13 → 6, 19x19 → 9, 24x24 → 11.5, ...).

    >>> centered_r_for_grid_size(13)
    Fraction(13, 2)
    """
    if isinstance(grid_size, bool) or not isinstance(grid_size, int):
        raise ParameterError(f"grid_size must be an int, got {grid_size!r}")
    if grid_size <= 0:
        raise ParameterError(f"grid_size must be > 0, got {grid_size}")
    return Fraction(grid_size, 2)


def centered_pixel_tolerance_for_grid_size(grid_size: int) -> Fraction:
    """Effective pixel tolerance of a Centered square: (side − 1) / 2.

    This is the value the paper tabulates (Table 3, "Centered Discr. r"):
    integral for odd sides, half-integral for even ones (24x24 → 11.5).
    """
    if isinstance(grid_size, bool) or not isinstance(grid_size, int):
        raise ParameterError(f"grid_size must be an int, got {grid_size!r}")
    if grid_size <= 0:
        raise ParameterError(f"grid_size must be > 0, got {grid_size}")
    return Fraction(grid_size - 1, 2)


def robust_r_for_grid_size(grid_size: int) -> Fraction:
    """Guaranteed tolerance r of Robust Discretization for a square side.

    Robust Discretization uses 6r x 6r squares, so r = side / 6 — the
    "Robust Discr. r (pixels)" column of Table 3 (9x9 → 1.5, 13x13 → 2.17,
    19x19 → 3.17, 24x24 → 4, 36x36 → 6, 54x54 → 9).

    >>> robust_r_for_grid_size(54)
    Fraction(9, 1)
    """
    if isinstance(grid_size, bool) or not isinstance(grid_size, int):
        raise ParameterError(f"grid_size must be an int, got {grid_size!r}")
    if grid_size <= 0:
        raise ParameterError(f"grid_size must be > 0, got {grid_size}")
    return Fraction(grid_size, 6)


def to_float(value: RealLike) -> float:
    """Lossy conversion to float, for reporting and plotting-style output."""
    validate_real(value, "value")
    return float(value)
