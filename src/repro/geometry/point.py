"""Immutable n-dimensional points.

A :class:`Point` is the basic currency of the library: click-points on an
image, centers of tolerance regions, grid offsets.  Points are immutable,
hashable and dimension-checked, and support the small amount of vector
arithmetic the discretization algorithms need.

The paper works in 1-D (the core algorithm), 2-D (click-based graphical
passwords) and sketches n-D (3-D graphical password schemes); :class:`Point`
is dimension-generic so a single implementation serves all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.numbers import RealLike, as_exact, to_float, validate_real

__all__ = ["Point"]


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in n-dimensional real space.

    Coordinates may be ``int``, ``float`` or :class:`~fractions.Fraction`
    (mixed freely).  Construct via ``Point((x, y))``, or the convenience
    class methods :meth:`of` and :meth:`xy`.

    >>> p = Point.xy(10, 20)
    >>> p.x, p.y
    (10, 20)
    >>> (p + Point.xy(1, 2)).coords
    (11, 22)
    """

    coords: Tuple[RealLike, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.coords, tuple):
            object.__setattr__(self, "coords", tuple(self.coords))
        if not self.coords:
            raise ParameterError("a Point needs at least one coordinate")
        for index, coord in enumerate(self.coords):
            validate_real(coord, f"coords[{index}]")

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, *coords: RealLike) -> "Point":
        """Build a point from positional coordinates: ``Point.of(3, 4)``."""
        return cls(tuple(coords))

    @classmethod
    def xy(cls, x: RealLike, y: RealLike) -> "Point":
        """Build a 2-D point; the common case for click-points."""
        return cls((x, y))

    @classmethod
    def from_sequence(cls, seq: Sequence[RealLike] | Iterable[RealLike]) -> "Point":
        """Build a point from any iterable of coordinates."""
        return cls(tuple(seq))

    # -- basic accessors ---------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.coords)

    @property
    def x(self) -> RealLike:
        """First coordinate."""
        return self.coords[0]

    @property
    def y(self) -> RealLike:
        """Second coordinate (requires ``dim >= 2``)."""
        if self.dim < 2:
            raise DimensionMismatchError("Point has no y coordinate (1-D)")
        return self.coords[1]

    @property
    def z(self) -> RealLike:
        """Third coordinate (requires ``dim >= 3``)."""
        if self.dim < 3:
            raise DimensionMismatchError("Point has no z coordinate")
        return self.coords[2]

    def __iter__(self) -> Iterator[RealLike]:
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def __getitem__(self, index: int) -> RealLike:
        return self.coords[index]

    # -- arithmetic --------------------------------------------------------

    def _check_dim(self, other: "Point") -> None:
        if self.dim != other.dim:
            raise DimensionMismatchError(
                f"dimension mismatch: {self.dim}-D vs {other.dim}-D"
            )

    def __add__(self, other: "Point") -> "Point":
        self._check_dim(other)
        return Point(tuple(a + b for a, b in zip(self.coords, other.coords)))

    def __sub__(self, other: "Point") -> "Point":
        self._check_dim(other)
        return Point(tuple(a - b for a, b in zip(self.coords, other.coords)))

    def scale(self, factor: RealLike) -> "Point":
        """Return the point with every coordinate multiplied by *factor*."""
        validate_real(factor, "factor")
        return Point(tuple(c * factor for c in self.coords))

    def translate(self, *deltas: RealLike) -> "Point":
        """Return the point shifted by per-axis *deltas*."""
        if len(deltas) != self.dim:
            raise DimensionMismatchError(
                f"expected {self.dim} deltas, got {len(deltas)}"
            )
        return Point(tuple(c + d for c, d in zip(self.coords, deltas)))

    # -- conversions -------------------------------------------------------

    def exact(self) -> "Point":
        """Return the point with coordinates converted to exact rationals."""
        return Point(tuple(as_exact(c) for c in self.coords))

    def as_floats(self) -> Tuple[float, ...]:
        """Return coordinates as a tuple of floats (lossy, for reporting)."""
        return tuple(to_float(c) for c in self.coords)

    def rounded(self) -> "Point":
        """Return the nearest integer-pixel point (round-half-to-even)."""
        return Point(tuple(int(round(to_float(c))) for c in self.coords))

    def to_json(self) -> list:
        """JSON-serializable representation (Fractions become ``[num, den]``)."""
        out: list = []
        for coord in self.coords:
            if isinstance(coord, Fraction):
                out.append([coord.numerator, coord.denominator])
            else:
                out.append(coord)
        return out

    @classmethod
    def from_json(cls, data: Sequence) -> "Point":
        """Inverse of :meth:`to_json`."""
        coords: list[RealLike] = []
        for item in data:
            if isinstance(item, (list, tuple)):
                if len(item) != 2:
                    raise ParameterError(f"bad serialized coordinate: {item!r}")
                coords.append(Fraction(int(item[0]), int(item[1])))
            else:
                coords.append(item)
        return cls(tuple(coords))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(c) for c in self.coords)
        return f"Point({inner})"
