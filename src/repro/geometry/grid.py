"""Uniform axis-aligned grids.

A :class:`Grid` partitions n-dimensional space into half-open cells of a
fixed per-axis size, with the whole lattice translated by a per-axis
*offset*.  Both discretization schemes in the paper are built from grids:

* **Robust Discretization** overlays three (in 2-D) fixed candidate grids of
  cell size 6r, diagonally offset by 0, 2r and 4r.
* **Centered Discretization** constructs, per click-point, a grid of cell
  size 2r whose offset ``d = (x − r) mod 2r`` is derived from the point so
  the point is exactly centered in its cell.

Cells are identified by integer index vectors; ``cell_of`` maps a point to
the index of the unique cell containing it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Tuple

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.numbers import RealLike, floor_div, validate_positive, validate_real
from repro.geometry.point import Point
from repro.geometry.region import Box

__all__ = ["Grid", "CellIndex", "grid_float_table", "square_grid_family"]

#: Integer index vector identifying one cell of a grid.
CellIndex = Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Grid:
    """A uniform half-open grid: cell k spans ``[offset + k·size, offset + (k+1)·size)``.

    ``cell_sizes`` and ``offsets`` are per-axis; a square 2-D grid of side s
    with offset (dx, dy) is ``Grid((s, s), (dx, dy))``.

    >>> g = Grid((10, 10), (0, 0))
    >>> g.cell_of(Point.xy(25, 7))
    (2, 0)
    """

    cell_sizes: Tuple[RealLike, ...]
    offsets: Tuple[RealLike, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.cell_sizes, tuple):
            object.__setattr__(self, "cell_sizes", tuple(self.cell_sizes))
        if not isinstance(self.offsets, tuple):
            object.__setattr__(self, "offsets", tuple(self.offsets))
        if not self.cell_sizes:
            raise ParameterError("a Grid needs at least one axis")
        if len(self.cell_sizes) != len(self.offsets):
            raise DimensionMismatchError(
                f"{len(self.cell_sizes)} cell sizes but {len(self.offsets)} offsets"
            )
        for axis, size in enumerate(self.cell_sizes):
            validate_positive(size, f"cell_sizes[{axis}]")
        for axis, offset in enumerate(self.offsets):
            validate_real(offset, f"offsets[{axis}]")

    # -- constructors ------------------------------------------------------

    @classmethod
    def square(cls, dim: int, size: RealLike, offset: RealLike = 0) -> "Grid":
        """A grid with the same cell size and offset on every axis."""
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        return cls((size,) * dim, (offset,) * dim)

    @classmethod
    def with_offsets(cls, size: RealLike, offsets: Tuple[RealLike, ...]) -> "Grid":
        """A grid with uniform cell size but per-axis offsets."""
        return cls((size,) * len(offsets), tuple(offsets))

    # -- core operations ---------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.cell_sizes)

    def cell_of(self, point: Point) -> CellIndex:
        """Index vector of the unique cell containing *point*.

        Implements ``i_k = ⌊(p_k − offset_k) / size_k⌋`` per axis — the same
        floor the paper uses for verification (§3.1,
        ``i' = ⌊(x' − d)/2r⌋``).
        """
        if point.dim != self.dim:
            raise DimensionMismatchError(
                f"point is {point.dim}-D but grid is {self.dim}-D"
            )
        return tuple(
            floor_div(p_c - off, size)
            for p_c, off, size in zip(point, self.offsets, self.cell_sizes)
        )

    def cell_box(self, index: CellIndex) -> Box:
        """The half-open box of the cell with the given *index*."""
        if len(index) != self.dim:
            raise DimensionMismatchError(
                f"index has {len(index)} components but grid is {self.dim}-D"
            )
        lo = Point(
            tuple(
                off + i * size
                for i, off, size in zip(index, self.offsets, self.cell_sizes)
            )
        )
        hi = Point(
            tuple(
                off + (i + 1) * size
                for i, off, size in zip(index, self.offsets, self.cell_sizes)
            )
        )
        return Box(lo, hi)

    def cell_box_of(self, point: Point) -> Box:
        """The box of the cell containing *point* (convenience)."""
        return self.cell_box(self.cell_of(point))

    def cell_center(self, index: CellIndex) -> Point:
        """Center of the cell with the given *index*."""
        return self.cell_box(index).center()

    def margin(self, point: Point) -> RealLike:
        """Distance from *point* to the nearest edge of its own cell.

        A point is **r-safe** in this grid (Birget et al.) iff
        ``margin(point) >= r``.
        """
        return self.cell_box_of(point).margin(point)

    def is_safe(self, point: Point, r: RealLike) -> bool:
        """Whether *point* is at least *r* from every edge of its cell."""
        validate_positive(r, "r")
        return self.margin(point) >= r

    def translate(self, *deltas: RealLike) -> "Grid":
        """A copy of the grid shifted by per-axis *deltas*."""
        if len(deltas) != self.dim:
            raise DimensionMismatchError(
                f"expected {self.dim} deltas, got {len(deltas)}"
            )
        return Grid(
            self.cell_sizes,
            tuple(off + d for off, d in zip(self.offsets, deltas)),
        )

    def cells_covering(self, box: Box) -> Tuple[CellIndex, ...]:
        """Indices of every cell intersecting *box* (half-open semantics).

        Used by the attack code to enumerate which grid cells a tolerance
        region can map into.
        """
        import itertools

        if box.dim != self.dim:
            raise DimensionMismatchError(
                f"box is {box.dim}-D but grid is {self.dim}-D"
            )
        axis_ranges = []
        for k in range(self.dim):
            first = floor_div(box.lo[k] - self.offsets[k], self.cell_sizes[k])
            # hi is exclusive; the cell containing hi is excluded when hi
            # lies exactly on a boundary.
            last_edge = box.hi[k] - self.offsets[k]
            last = floor_div(last_edge, self.cell_sizes[k])
            if last_edge % self.cell_sizes[k] == 0:
                last -= 1
            axis_ranges.append(range(first, last + 1))
        return tuple(itertools.product(*axis_ranges))

    def float_table(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """LRU-cached ``(cell_sizes, offsets)`` float64 arrays for this grid.

        The batch kernels (:mod:`repro.core.batch`) re-verify the same
        tolerance/grid combination millions of times; this memoizes the
        exact-rational → float64 conversion per distinct grid so repeated
        verifications reuse one precomputed partition table.  The returned
        arrays are read-only.
        """
        return grid_float_table(self)


@functools.lru_cache(maxsize=512)
def grid_float_table(grid: Grid) -> Tuple["np.ndarray", "np.ndarray"]:
    """Cached float64 ``(cell_sizes, offsets)`` arrays of *grid*.

    :class:`Grid` is a frozen, hashable dataclass, so identical grids (same
    exact sizes and offsets) share one cached table.  Conversion goes
    through ``float()`` on the exact rationals, i.e. each entry is the
    correctly-rounded double of the exact value.
    """
    import numpy as np

    sizes = np.array([float(s) for s in grid.cell_sizes], dtype=np.float64)
    offsets = np.array([float(o) for o in grid.offsets], dtype=np.float64)
    sizes.flags.writeable = False
    offsets.flags.writeable = False
    return sizes, offsets


@functools.lru_cache(maxsize=256)
def square_grid_family(
    dim: int, size: RealLike, step: RealLike, count: int
) -> Tuple[Grid, ...]:
    """Cached tuple of *count* square grids diagonally offset by *step*.

    Robust Discretization overlays ``dim + 1`` such grids (side ``6r``,
    step ``2r`` in 2-D); constructing many scheme instances with the same
    tolerance — the common shape of experiment sweeps and attack
    simulations — reuses one family (and therefore one set of cached
    float tables) instead of rebuilding the partitions each time.
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    return tuple(Grid.square(dim, size, offset=g * step) for g in range(count))
