"""Axis-aligned boxes (intervals, rectangles, hyper-rectangles).

A :class:`Box` is half-open on every axis: it contains a point ``p`` iff
``lo[k] <= p[k] < hi[k]`` for every axis ``k``.  Half-open boxes tile space
exactly — every point belongs to exactly one cell of a grid — which is the
property discretization schemes rely on.  The paper's tolerance squares,
Robust-Discretization grid-squares, and the false-accept / false-reject
regions of Figure 1 are all instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.numbers import RealLike, validate_real
from repro.geometry.point import Point

__all__ = ["Box", "centered_box"]


@dataclass(frozen=True, slots=True)
class Box:
    """A half-open axis-aligned box ``[lo, hi)`` in n dimensions.

    >>> b = Box(Point.xy(0, 0), Point.xy(10, 5))
    >>> b.contains(Point.xy(9, 4)), b.contains(Point.xy(10, 0))
    (True, False)
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if self.lo.dim != self.hi.dim:
            raise DimensionMismatchError(
                f"lo is {self.lo.dim}-D but hi is {self.hi.dim}-D"
            )
        for axis, (lo_c, hi_c) in enumerate(zip(self.lo, self.hi)):
            if lo_c >= hi_c:
                raise ParameterError(
                    f"box is empty on axis {axis}: lo={lo_c!r} >= hi={hi_c!r}"
                )

    # -- basic accessors ---------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self.lo.dim

    def side(self, axis: int) -> RealLike:
        """Length of the box along *axis*."""
        return self.hi[axis] - self.lo[axis]

    @property
    def sides(self) -> Tuple[RealLike, ...]:
        """Per-axis lengths."""
        return tuple(self.side(k) for k in range(self.dim))

    def volume(self) -> RealLike:
        """Product of the side lengths (area in 2-D, length in 1-D)."""
        result: RealLike = 1
        for k in range(self.dim):
            result = result * self.side(k)
        return result

    def center(self) -> Point:
        """The centroid of the box.

        For a Centered-Discretization cell this is exactly the enrolled
        click-point; for a Robust-Discretization cell it generally is not —
        that gap is the source of false accepts and rejects.
        """
        halves = tuple((lo + hi) / 2 for lo, hi in zip(self.lo, self.hi))
        return Point(halves)

    # -- predicates --------------------------------------------------------

    def contains(self, point: Point) -> bool:
        """Half-open membership test: ``lo <= p < hi`` on every axis."""
        if point.dim != self.dim:
            raise DimensionMismatchError(
                f"point is {point.dim}-D but box is {self.dim}-D"
            )
        return all(
            lo_c <= p_c < hi_c
            for lo_c, p_c, hi_c in zip(self.lo, point, self.hi)
        )

    def margin(self, point: Point) -> RealLike:
        """Minimum distance from *point* to any face of the box.

        Positive for interior points; negative when the point is outside
        (then it is minus the largest per-axis violation).  A point is
        *r-safe* in the sense of Birget et al. iff ``margin(point) >= r``.
        """
        if point.dim != self.dim:
            raise DimensionMismatchError(
                f"point is {point.dim}-D but box is {self.dim}-D"
            )
        return min(
            min(p_c - lo_c, hi_c - p_c)
            for lo_c, p_c, hi_c in zip(self.lo, point, self.hi)
        )

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes share any point (half-open semantics)."""
        if other.dim != self.dim:
            raise DimensionMismatchError(
                f"boxes have different dimensions: {self.dim} vs {other.dim}"
            )
        return all(
            self.lo[k] < other.hi[k] and other.lo[k] < self.hi[k]
            for k in range(self.dim)
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        lo = Point(tuple(max(self.lo[k], other.lo[k]) for k in range(self.dim)))
        hi = Point(tuple(min(self.hi[k], other.hi[k]) for k in range(self.dim)))
        return Box(lo, hi)

    def overlap_volume(self, other: "Box") -> RealLike:
        """Volume of the intersection (0 when disjoint).

        Used by the Figure-1 analysis: the false-accept area of a Robust
        cell is ``cell.volume() - cell.overlap_volume(centered_square)``.
        """
        overlap = self.intersection(other)
        return 0 if overlap is None else overlap.volume()

    # -- pixel enumeration -------------------------------------------------

    def integer_points(self) -> Iterator[Point]:
        """Yield every integer-coordinate point inside the box.

        Only sensible for small boxes (tolerance squares, grid cells); used
        by exhaustive verification in tests and by the leakage analysis.
        """
        import itertools
        import math

        ranges = []
        for k in range(self.dim):
            lo_k = math.ceil(self.lo[k])
            # half-open: hi itself excluded
            hi_k = math.ceil(self.hi[k])
            ranges.append(range(int(lo_k), int(hi_k)))
        for combo in itertools.product(*ranges):
            yield Point(tuple(combo))

    def count_integer_points(self) -> int:
        """Number of integer-coordinate points inside the box, in O(dim)."""
        import math

        total = 1
        for k in range(self.dim):
            lo_k = math.ceil(self.lo[k])
            hi_k = math.ceil(self.hi[k])
            total *= max(0, int(hi_k) - int(lo_k))
        return total


def centered_box(center: Point, radius: RealLike) -> Box:
    """The half-open box of half-side *radius* centered on *center*.

    This is the paper's **centered-tolerance** region: the region a user
    plausibly expects to be accepted, ``[x − r, x + r)`` on each axis.  With
    the pixel convention r = t + ½ and an integer-pixel center, the integer
    points inside are exactly those with Chebyshev distance ≤ t.

    >>> centered_box(Point.xy(10, 10), 2).contains(Point.xy(11, 8))
    True
    """
    validate_real(radius, "radius")
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius!r}")
    lo = Point(tuple(c - radius for c in center))
    hi = Point(tuple(c + radius for c in center))
    return Box(lo, hi)
