"""User click behaviour: selection of click-points and re-entry error.

Two behaviours matter to the paper's measurements:

* **Selection** — where users put their original click-points.  We sample
  from the image's hotspot mixture (popularity-weighted Gaussian around a
  feature, or uniform background), enforcing the PassPoints-style minimum
  separation between the points of one password.  Cross-user concentration
  of selections is what human-seeded dictionaries exploit (Figures 7–8).
* **Re-entry error** — how far a login click lands from the original point.
  The paper emphasizes participants were "very accurate in targeting their
  click-points" (footnote 3), so the model is a small discretized Gaussian
  plus a rare gross-error component (targeting the wrong feature entirely),
  with a per-user skill multiplier.  The error distribution drives the
  false-accept/false-reject rates of Tables 1–2.

All sampling flows through an explicit :class:`numpy.random.Generator`, so
every simulated study is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ParameterError
from repro.geometry.point import Point
from repro.study.image import StudyImage

__all__ = ["ClickErrorModel", "SelectionModel", "DEFAULT_ERROR_MODEL", "DEFAULT_SELECTION_MODEL"]


@dataclass(frozen=True, slots=True)
class ClickErrorModel:
    """Distribution of re-entry click error around the original point.

    The error is a three-component mixture, per click:

    1. with probability ``1 − tail_rate − gross_rate``: an *accurate* click,
       Gaussian with per-axis std ``sigma`` (1–2 px; the paper stresses
       participants were "very accurate");
    2. with probability ``tail_rate``: a *sloppy* click, Gaussian with std
       ``tail_sigma`` (a hurried or less-careful re-entry, still aimed at
       the right feature).  Real click data is heavier-tailed than a single
       Gaussian; this component reproduces the paper's pattern of false
       rejects staying high from 9×9 to 13×13 squares (Table 1);
    3. with probability ``gross_rate``: a *gross* error — the user
       misremembers and clicks somewhere unrelated (wide Gaussian).  Gross
       errors produce true rejects under every scheme, keeping overall
       success rates realistic.

    ``skill_spread`` is the log-normal σ of a per-user multiplier applied to
    the accurate/sloppy stds: some users click more precisely than others.
    """

    sigma: float = 1.6
    tail_rate: float = 0.35
    tail_sigma: float = 2.8
    gross_rate: float = 0.02
    gross_sigma: float = 35.0
    skill_spread: float = 0.35

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ParameterError(f"sigma must be > 0, got {self.sigma}")
        if not 0 <= self.tail_rate < 1:
            raise ParameterError(f"tail_rate must be in [0, 1), got {self.tail_rate}")
        if self.tail_sigma <= 0:
            raise ParameterError(f"tail_sigma must be > 0, got {self.tail_sigma}")
        if not 0 <= self.gross_rate < 1:
            raise ParameterError(f"gross_rate must be in [0, 1), got {self.gross_rate}")
        if self.tail_rate + self.gross_rate >= 1:
            raise ParameterError(
                "tail_rate + gross_rate must be < 1, got "
                f"{self.tail_rate} + {self.gross_rate}"
            )
        if self.gross_sigma <= 0:
            raise ParameterError(f"gross_sigma must be > 0, got {self.gross_sigma}")
        if self.skill_spread < 0:
            raise ParameterError(
                f"skill_spread must be >= 0, got {self.skill_spread}"
            )

    def user_skill(self, rng: np.random.Generator) -> float:
        """Draw one user's accuracy multiplier (1.0 when spread is 0)."""
        if self.skill_spread == 0:
            return 1.0
        return float(np.exp(rng.normal(0.0, self.skill_spread)))

    def sample_reentry(
        self,
        image: StudyImage,
        original: Point,
        rng: np.random.Generator,
        skill: float = 1.0,
    ) -> Point:
        """Sample one re-entry click for *original* on *image*.

        Returns an integer-pixel point inside the image.  With probability
        ``gross_rate`` the click is a gross error; otherwise it is the
        original plus discretized Gaussian noise of per-axis std
        ``sigma × skill``.
        """
        if skill <= 0:
            raise ParameterError(f"skill must be > 0, got {skill}")
        roll = rng.random()
        if roll < self.gross_rate:
            spread = self.gross_sigma
        elif roll < self.gross_rate + self.tail_rate:
            spread = self.tail_sigma * skill
        else:
            spread = self.sigma * skill
        dx = rng.normal(0.0, spread)
        dy = rng.normal(0.0, spread)
        x, y = image.clamp(float(original.x) + dx, float(original.y) + dy)
        return Point.xy(x, y)

    def to_json(self) -> dict:
        """JSON-serializable parameters."""
        return {
            "sigma": self.sigma,
            "tail_rate": self.tail_rate,
            "tail_sigma": self.tail_sigma,
            "gross_rate": self.gross_rate,
            "gross_sigma": self.gross_sigma,
            "skill_spread": self.skill_spread,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ClickErrorModel":
        """Inverse of :meth:`to_json`."""
        return cls(
            sigma=float(data["sigma"]),
            tail_rate=float(data.get("tail_rate", 0.0)),
            tail_sigma=float(data.get("tail_sigma", 4.0)),
            gross_rate=float(data["gross_rate"]),
            gross_sigma=float(data["gross_sigma"]),
            skill_spread=float(data["skill_spread"]),
        )


@dataclass(frozen=True, slots=True)
class SelectionModel:
    """How users choose the original click-points of a password.

    Attributes
    ----------
    min_separation:
        Minimum Chebyshev distance (pixels) between two click-points of the
        same password; users do not pick the same feature twice.  Resampling
        enforces the constraint.
    max_resamples:
        Safety bound on constraint resampling before the constraint is
        relaxed (prevents pathological configurations from looping).
    """

    min_separation: int = 15
    max_resamples: int = 200

    def __post_init__(self) -> None:
        if self.min_separation < 0:
            raise ParameterError(
                f"min_separation must be >= 0, got {self.min_separation}"
            )
        if self.max_resamples < 1:
            raise ParameterError(
                f"max_resamples must be >= 1, got {self.max_resamples}"
            )

    def _sample_raw(self, image: StudyImage, rng: np.random.Generator) -> Point:
        """One click-point from the image's salience mixture."""
        if rng.random() < image.background_rate:
            x = int(rng.integers(0, image.width))
            y = int(rng.integers(0, image.height))
            return Point.xy(x, y)
        weights = np.array([h.weight for h in image.hotspots], dtype=float)
        weights /= weights.sum()
        spot = image.hotspots[int(rng.choice(len(weights), p=weights))]
        x, y = image.clamp(
            rng.normal(spot.x, spot.spread), rng.normal(spot.y, spot.spread)
        )
        return Point.xy(x, y)

    def sample_password(
        self,
        image: StudyImage,
        rng: np.random.Generator,
        clicks: int = 5,
    ) -> Tuple[Point, ...]:
        """Sample an ordered password of *clicks* click-points.

        PassPoints passwords are ordered sequences of 5 points (paper §4).
        """
        if clicks < 1:
            raise ParameterError(f"clicks must be >= 1, got {clicks}")
        chosen: list[Point] = []
        for _ in range(clicks):
            for attempt in range(self.max_resamples):
                candidate = self._sample_raw(image, rng)
                far_enough = all(
                    max(abs(int(candidate.x) - int(p.x)), abs(int(candidate.y) - int(p.y)))
                    >= self.min_separation
                    for p in chosen
                )
                if far_enough:
                    break
            chosen.append(candidate)
        return tuple(chosen)

    def to_json(self) -> dict:
        """JSON-serializable parameters."""
        return {
            "min_separation": self.min_separation,
            "max_resamples": self.max_resamples,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SelectionModel":
        """Inverse of :meth:`to_json`."""
        return cls(
            min_separation=int(data["min_separation"]),
            max_resamples=int(data["max_resamples"]),
        )


#: Defaults calibrated so the simulated field study lands in the paper's
#: regime (see EXPERIMENTS.md for the calibration notes).
DEFAULT_ERROR_MODEL = ClickErrorModel()
DEFAULT_SELECTION_MODEL = SelectionModel()
