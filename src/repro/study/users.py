"""Simulated study participants.

A participant carries the per-user state that shapes their data: which image
they were assigned (the paper split its 191 participants roughly in half
between *Cars* and *Pool*), and a personal accuracy multiplier drawn from
the click-error model (some users click more precisely than others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.study.clickmodel import ClickErrorModel
from repro.study.image import StudyImage

__all__ = ["Participant", "generate_participants"]


@dataclass(frozen=True, slots=True)
class Participant:
    """One simulated study participant."""

    user_id: int
    image_name: str
    skill: float

    def __post_init__(self) -> None:
        if self.skill <= 0:
            raise ParameterError(f"skill must be > 0, got {self.skill}")


def generate_participants(
    count: int,
    images: Sequence[StudyImage],
    error_model: ClickErrorModel,
    rng: np.random.Generator,
) -> Tuple[Participant, ...]:
    """Generate *count* participants assigned round-robin across *images*.

    Round-robin assignment reproduces the paper's "approximately half of
    the participants saw the Cars image and the others used the Pool image"
    exactly for two images, and generalizes to any number.  Skill
    multipliers are drawn i.i.d. from the error model.
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    if not images:
        raise ParameterError("at least one image is required")
    return tuple(
        Participant(
            user_id=user_id,
            image_name=images[user_id % len(images)].name,
            skill=error_model.user_skill(rng),
        )
        for user_id in range(count)
    )
