"""Dataset containers for simulated user studies.

Mirrors the structure of the paper's field-study data (§4): a set of
passwords (ordered click-point sequences created by users on a named image)
and a set of login attempts, each tied to the password it tries to re-enter.
The paper's dataset had 481 passwords and 3339 login attempts from 191
participants over two images; the containers here carry any scale.

Everything is immutable and JSON-serializable so generated studies can be
saved, shared and re-analyzed without re-simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.study.image import StudyImage

__all__ = ["PasswordSample", "LoginSample", "StudyDataset"]


@dataclass(frozen=True, slots=True)
class PasswordSample:
    """One user-created password: an ordered click-point sequence.

    ``password_id`` is unique within a dataset; ``user_id`` identifies the
    simulated participant (a user may own several passwords, as in the
    paper's multi-week field study).
    """

    password_id: int
    user_id: int
    image_name: str
    points: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise DatasetError("a password needs at least one click-point")
        for point in self.points:
            if point.dim != 2:
                raise DatasetError("click-points must be 2-D")

    @property
    def clicks(self) -> int:
        """Number of click-points (5 for classic PassPoints)."""
        return len(self.points)

    def to_json(self) -> dict:
        """JSON-serializable representation."""
        return {
            "password_id": self.password_id,
            "user_id": self.user_id,
            "image_name": self.image_name,
            "points": [p.to_json() for p in self.points],
        }

    @classmethod
    def from_json(cls, data: dict) -> "PasswordSample":
        """Inverse of :meth:`to_json`."""
        return cls(
            password_id=int(data["password_id"]),
            user_id=int(data["user_id"]),
            image_name=str(data["image_name"]),
            points=tuple(Point.from_json(p) for p in data["points"]),
        )


@dataclass(frozen=True, slots=True)
class LoginSample:
    """One login attempt against a password.

    ``points`` are the re-entered click-points, in order; they are compared
    against the password's original points by the analysis code under
    whichever discretization scheme is being evaluated.
    """

    login_id: int
    password_id: int
    points: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise DatasetError("a login attempt needs at least one click-point")
        for point in self.points:
            if point.dim != 2:
                raise DatasetError("click-points must be 2-D")

    def to_json(self) -> dict:
        """JSON-serializable representation."""
        return {
            "login_id": self.login_id,
            "password_id": self.password_id,
            "points": [p.to_json() for p in self.points],
        }

    @classmethod
    def from_json(cls, data: dict) -> "LoginSample":
        """Inverse of :meth:`to_json`."""
        return cls(
            login_id=int(data["login_id"]),
            password_id=int(data["password_id"]),
            points=tuple(Point.from_json(p) for p in data["points"]),
        )


@dataclass(frozen=True)
class StudyDataset:
    """A complete simulated study: images, passwords and login attempts.

    Invariants (checked at construction):

    * password ids are unique; login ids are unique;
    * every login references an existing password and has the same number
      of click-points as it;
    * every password's image exists in ``images`` and all its points lie
      inside that image.
    """

    images: Mapping[str, StudyImage]
    passwords: Tuple[PasswordSample, ...]
    logins: Tuple[LoginSample, ...]

    def __post_init__(self) -> None:
        by_id: Dict[int, PasswordSample] = {}
        for password in self.passwords:
            if password.password_id in by_id:
                raise DatasetError(
                    f"duplicate password_id {password.password_id}"
                )
            if password.image_name not in self.images:
                raise DatasetError(
                    f"password {password.password_id} references unknown image "
                    f"{password.image_name!r}"
                )
            image = self.images[password.image_name]
            for point in password.points:
                if not image.contains(point):
                    raise DatasetError(
                        f"password {password.password_id} has point {point!r} "
                        f"outside image {password.image_name!r}"
                    )
            by_id[password.password_id] = password
        seen_logins = set()
        for login in self.logins:
            if login.login_id in seen_logins:
                raise DatasetError(f"duplicate login_id {login.login_id}")
            seen_logins.add(login.login_id)
            target = by_id.get(login.password_id)
            if target is None:
                raise DatasetError(
                    f"login {login.login_id} references unknown password "
                    f"{login.password_id}"
                )
            if len(login.points) != len(target.points):
                raise DatasetError(
                    f"login {login.login_id} has {len(login.points)} points, "
                    f"password {login.password_id} has {len(target.points)}"
                )
        object.__setattr__(self, "_password_index", by_id)

    # -- access ---------------------------------------------------------------

    def password(self, password_id: int) -> PasswordSample:
        """The password with the given id."""
        try:
            return self._password_index[password_id]  # type: ignore[attr-defined]
        except KeyError:
            raise DatasetError(f"unknown password_id {password_id}") from None

    def logins_for(self, password_id: int) -> Tuple[LoginSample, ...]:
        """All login attempts against one password, in dataset order."""
        self.password(password_id)  # raises for unknown ids
        return tuple(l for l in self.logins if l.password_id == password_id)

    def passwords_on(self, image_name: str) -> Tuple[PasswordSample, ...]:
        """All passwords created on one image."""
        if image_name not in self.images:
            raise DatasetError(f"unknown image {image_name!r}")
        return tuple(p for p in self.passwords if p.image_name == image_name)

    def logins_on(self, image_name: str) -> Tuple[LoginSample, ...]:
        """All login attempts against passwords on one image."""
        wanted = {p.password_id for p in self.passwords_on(image_name)}
        return tuple(l for l in self.logins if l.password_id in wanted)

    def iter_login_pairs(self) -> Iterator[Tuple[PasswordSample, LoginSample]]:
        """Yield (password, login) pairs for every login attempt."""
        for login in self.logins:
            yield self.password(login.password_id), login

    @property
    def user_count(self) -> int:
        """Number of distinct simulated participants."""
        return len({p.user_id for p in self.passwords})

    def summary(self) -> dict:
        """Headline counts, shaped like the paper's §4 description."""
        return {
            "participants": self.user_count,
            "passwords": len(self.passwords),
            "logins": len(self.logins),
            "images": {
                name: {
                    "passwords": len(self.passwords_on(name)),
                    "logins": len(self.logins_on(name)),
                }
                for name in self.images
            },
        }

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-serializable representation of the full dataset."""
        return {
            "images": {name: img.to_json() for name, img in self.images.items()},
            "passwords": [p.to_json() for p in self.passwords],
            "logins": [l.to_json() for l in self.logins],
        }

    @classmethod
    def from_json(cls, data: dict) -> "StudyDataset":
        """Inverse of :meth:`to_json`."""
        return cls(
            images={
                name: StudyImage.from_json(img)
                for name, img in data["images"].items()
            },
            passwords=tuple(PasswordSample.from_json(p) for p in data["passwords"]),
            logins=tuple(LoginSample.from_json(l) for l in data["logins"]),
        )

    def save(self, path: str) -> None:
        """Write the dataset to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)

    @classmethod
    def load(cls, path: str) -> "StudyDataset":
        """Read a dataset from a JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))
