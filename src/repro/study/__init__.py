"""Simulated user-study substrate.

Stand-in for the paper's empirical data (§4): synthetic salience-map images
(*Cars*/*Pool*), hotspot-seeking click selection, accurate-but-noisy click
re-entry, a field-study generator matching the paper's dataset shape
(191 participants / 481 passwords / 3339 logins), and a lab-study generator
for attack-dictionary seeding (30 passwords per image).
"""

from repro.study.clickmodel import (
    DEFAULT_ERROR_MODEL,
    DEFAULT_SELECTION_MODEL,
    ClickErrorModel,
    SelectionModel,
)
from repro.study.dataset import LoginSample, PasswordSample, StudyDataset
from repro.study.fieldstudy import (
    PAPER_STUDY,
    FieldStudyConfig,
    generate_field_study,
)
from repro.study.image import (
    PAPER_IMAGE_HEIGHT,
    PAPER_IMAGE_WIDTH,
    Hotspot,
    StudyImage,
    canonical_images,
    cars_image,
    pool_image,
    random_image,
)
from repro.study.labstudy import LabStudyConfig, generate_lab_study, lab_click_points
from repro.study.users import Participant, generate_participants

__all__ = [
    "DEFAULT_ERROR_MODEL",
    "DEFAULT_SELECTION_MODEL",
    "ClickErrorModel",
    "FieldStudyConfig",
    "Hotspot",
    "LabStudyConfig",
    "LoginSample",
    "PAPER_IMAGE_HEIGHT",
    "PAPER_IMAGE_WIDTH",
    "PAPER_STUDY",
    "Participant",
    "PasswordSample",
    "SelectionModel",
    "StudyDataset",
    "StudyImage",
    "canonical_images",
    "cars_image",
    "generate_field_study",
    "generate_lab_study",
    "generate_participants",
    "lab_click_points",
    "pool_image",
    "random_image",
]
