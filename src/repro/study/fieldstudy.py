"""Field-study simulation: the stand-in for the paper's empirical dataset.

The paper's usability analysis (§4) replays a field study of PassPoints
(Chiasson et al., SOUPS 2007): **191 participants**, **481 passwords**
created and **3339 login attempts** recorded on two 451×331 images (*Cars*
and *Pool*), roughly half the participants per image.  The study system
used centered tolerance without hashing, so the raw click coordinates of
both passwords and login attempts were available for post-hoc analysis —
which is exactly what a :class:`~repro.study.dataset.StudyDataset` holds.

:func:`generate_field_study` reproduces that shape: participants are
assigned images round-robin, passwords are distributed among participants
as evenly as possible (participants created several passwords over the
multi-week study), and login attempts are multinomially distributed over
passwords.  Click selection and re-entry error come from
:mod:`repro.study.clickmodel`.

Everything derives deterministically from ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.study.clickmodel import (
    DEFAULT_ERROR_MODEL,
    DEFAULT_SELECTION_MODEL,
    ClickErrorModel,
    SelectionModel,
)
from repro.study.dataset import LoginSample, PasswordSample, StudyDataset
from repro.study.image import StudyImage, canonical_images
from repro.study.users import Participant, generate_participants

__all__ = ["FieldStudyConfig", "generate_field_study", "PAPER_STUDY"]


@dataclass(frozen=True)
class FieldStudyConfig:
    """Parameters of a simulated field study.

    The defaults replicate the paper's dataset shape: 191 participants,
    481 passwords, 3339 login attempts, 5 clicks per password, the Cars and
    Pool images.
    """

    participants: int = 191
    passwords_total: int = 481
    logins_total: int = 3339
    clicks_per_password: int = 5
    seed: int = 2008
    images: Tuple[StudyImage, ...] = field(default_factory=canonical_images)
    error_model: ClickErrorModel = DEFAULT_ERROR_MODEL
    selection_model: SelectionModel = DEFAULT_SELECTION_MODEL

    def __post_init__(self) -> None:
        if self.participants < 1:
            raise ParameterError("participants must be >= 1")
        if self.passwords_total < self.participants:
            raise ParameterError(
                "passwords_total must be >= participants "
                f"({self.passwords_total} < {self.participants}); every "
                "participant created at least one password"
            )
        if self.logins_total < 0:
            raise ParameterError("logins_total must be >= 0")
        if self.clicks_per_password < 1:
            raise ParameterError("clicks_per_password must be >= 1")
        if not self.images:
            raise ParameterError("at least one image is required")
        names = [img.name for img in self.images]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate image names: {names}")

    def with_seed(self, seed: int) -> "FieldStudyConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)


#: The paper's dataset shape with calibrated default behaviour models.
PAPER_STUDY = FieldStudyConfig()


def _spread_counts(total: int, bins: int, rng: np.random.Generator) -> np.ndarray:
    """Distribute *total* items over *bins*: one each, remainder multinomial.

    Guarantees every bin gets at least one item when ``total >= bins`` —
    every participant created at least one password, and (separately) every
    password received at least one login attempt whenever logins permit.
    """
    counts = np.ones(bins, dtype=int)
    remainder = total - bins
    if remainder > 0:
        extra = rng.multinomial(remainder, np.full(bins, 1.0 / bins))
        counts += extra
    return counts


def generate_field_study(config: FieldStudyConfig = PAPER_STUDY) -> StudyDataset:
    """Simulate a complete field study.

    Pipeline (all driven by ``config.seed``):

    1. generate participants with per-user skill, round-robin image
       assignment (paper: about half per image);
    2. distribute ``passwords_total`` among participants (≥ 1 each) and
       sample each password's click-points from the image's hotspot
       mixture with the minimum-separation rule;
    3. distribute ``logins_total`` among passwords (≥ 1 each when possible)
       and sample each login's click-points as original + re-entry error.

    Returns a validated :class:`~repro.study.dataset.StudyDataset`.
    """
    rng = np.random.default_rng(config.seed)
    images: Dict[str, StudyImage] = {img.name: img for img in config.images}
    participants = generate_participants(
        config.participants, config.images, config.error_model, rng
    )

    # -- passwords -------------------------------------------------------------
    per_user = _spread_counts(config.passwords_total, len(participants), rng)
    passwords: list[PasswordSample] = []
    owners: list[Participant] = []
    password_id = 0
    for participant, count in zip(participants, per_user):
        image = images[participant.image_name]
        for _ in range(int(count)):
            points = config.selection_model.sample_password(
                image, rng, clicks=config.clicks_per_password
            )
            passwords.append(
                PasswordSample(
                    password_id=password_id,
                    user_id=participant.user_id,
                    image_name=image.name,
                    points=points,
                )
            )
            owners.append(participant)
            password_id += 1

    # -- logins -----------------------------------------------------------------
    logins: list[LoginSample] = []
    if config.logins_total > 0:
        if config.logins_total >= len(passwords):
            per_password = _spread_counts(
                config.logins_total, len(passwords), rng
            )
        else:
            per_password = np.zeros(len(passwords), dtype=int)
            chosen = rng.choice(
                len(passwords), size=config.logins_total, replace=False
            )
            per_password[chosen] = 1
        login_id = 0
        for password, owner, count in zip(passwords, owners, per_password):
            image = images[password.image_name]
            for _ in range(int(count)):
                attempt_points = tuple(
                    config.error_model.sample_reentry(
                        image, original, rng, skill=owner.skill
                    )
                    for original in password.points
                )
                logins.append(
                    LoginSample(
                        login_id=login_id,
                        password_id=password.password_id,
                        points=attempt_points,
                    )
                )
                login_id += 1

    return StudyDataset(images=images, passwords=tuple(passwords), logins=tuple(logins))
