"""Synthetic study images: salience maps built from hotspot mixtures.

The paper's evaluation uses two 451×331-pixel photographs — *Cars*
(Figure 3) and *Pool* (Figure 4) — on which 191 field-study participants
chose PassPoints passwords.  We cannot ship the photographs or the human
data, so this module provides the behavioural stand-in: an image is modeled
as a **salience map**, a mixture of Gaussian *hotspots* (paper §2.1: areas
"more likely to be selected across users") over a uniform background.

What matters for every measurement in the paper is not pixel colours but

* how *concentrated* user click-points are across users (drives the
  human-seeded dictionary attack success, Figures 7–8), and
* where points sit relative to grid lines (uniformly, for any fixed grid —
  guaranteed here because hotspot centers are placed without reference to
  any grid).

The canonical stand-ins :func:`cars_image` and :func:`pool_image` differ the
way the paper's images evidently did: *Cars* is more clickable-object dense
and concentrated (higher attack success), *Pool* more diffuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.geometry.point import Point

__all__ = [
    "Hotspot",
    "StudyImage",
    "cars_image",
    "pool_image",
    "canonical_images",
    "random_image",
    "PAPER_IMAGE_WIDTH",
    "PAPER_IMAGE_HEIGHT",
]

#: Dimensions of the paper's study images (§4): 451×331 pixels.
PAPER_IMAGE_WIDTH = 451
PAPER_IMAGE_HEIGHT = 331


@dataclass(frozen=True, slots=True)
class Hotspot:
    """One salient image feature users like to click.

    Attributes
    ----------
    x, y:
        Center of the feature, in pixels.
    spread:
        Standard deviation (pixels) of clicks aimed at this feature; small
        spreads model small, crisp objects (car badges), large spreads model
        broad regions (a patch of water).
    weight:
        Relative popularity; weights are normalized within an image.
    """

    x: float
    y: float
    spread: float
    weight: float

    def __post_init__(self) -> None:
        if self.spread <= 0:
            raise ParameterError(f"hotspot spread must be > 0, got {self.spread}")
        if self.weight <= 0:
            raise ParameterError(f"hotspot weight must be > 0, got {self.weight}")


@dataclass(frozen=True)
class StudyImage:
    """A synthetic study image: bounds plus a salience model.

    Attributes
    ----------
    name:
        Stable identifier ("cars", "pool", …) used throughout datasets.
    width, height:
        Image dimensions in pixels; valid click coordinates are
        ``0 <= x < width``, ``0 <= y < height`` (integer pixels).
    hotspots:
        The Gaussian mixture of salient features.
    background_rate:
        Probability mass of the uniform background component — the chance a
        click ignores all hotspots (idiosyncratic choices).
    """

    name: str
    width: int
    height: int
    hotspots: Tuple[Hotspot, ...]
    background_rate: float = 0.15

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ParameterError(
                f"image dimensions must be positive, got {self.width}x{self.height}"
            )
        if not self.hotspots:
            raise ParameterError("an image needs at least one hotspot")
        if not 0 <= self.background_rate < 1:
            raise ParameterError(
                f"background_rate must be in [0, 1), got {self.background_rate}"
            )

    # -- geometry ------------------------------------------------------------

    def contains(self, point: Point) -> bool:
        """Whether an (integer or real) point lies inside the image."""
        if point.dim != 2:
            raise DomainError(f"images are 2-D; got {point.dim}-D point")
        return 0 <= point.x < self.width and 0 <= point.y < self.height

    def clamp(self, x: float, y: float) -> Tuple[int, int]:
        """Round to the nearest valid integer pixel inside the image."""
        xi = min(max(int(round(x)), 0), self.width - 1)
        yi = min(max(int(round(y)), 0), self.height - 1)
        return xi, yi

    @property
    def pixel_count(self) -> int:
        """Total number of pixels (candidate click-points)."""
        return self.width * self.height

    # -- salience -------------------------------------------------------------

    def _normalized_weights(self) -> np.ndarray:
        weights = np.array([h.weight for h in self.hotspots], dtype=float)
        return weights / weights.sum()

    def salience(self, x: float, y: float) -> float:
        """Unnormalized salience density at a pixel.

        Mixture of the hotspot Gaussians plus the uniform background; used
        by hotspot-guessing attacks and for rendering.
        """
        weights = self._normalized_weights()
        total = self.background_rate / self.pixel_count
        for weight, spot in zip(weights, self.hotspots):
            dx = (x - spot.x) / spot.spread
            dy = (y - spot.y) / spot.spread
            gaussian = np.exp(-0.5 * (dx * dx + dy * dy)) / (
                2.0 * np.pi * spot.spread * spot.spread
            )
            total += (1.0 - self.background_rate) * weight * gaussian
        return float(total)

    def salience_map(self) -> np.ndarray:
        """Dense salience map of shape ``(height, width)``, summing to 1.

        Vectorized over all pixels; used by the automated hotspot attack
        (paper §2.1's image-processing attack stand-in).
        """
        ys, xs = np.mgrid[0 : self.height, 0 : self.width]
        weights = self._normalized_weights()
        total = np.full(
            (self.height, self.width),
            self.background_rate / self.pixel_count,
            dtype=float,
        )
        for weight, spot in zip(weights, self.hotspots):
            dx = (xs - spot.x) / spot.spread
            dy = (ys - spot.y) / spot.spread
            gaussian = np.exp(-0.5 * (dx * dx + dy * dy)) / (
                2.0 * np.pi * spot.spread * spot.spread
            )
            total += (1.0 - self.background_rate) * weight * gaussian
        return total / total.sum()

    def render_ascii(self, columns: int = 64) -> str:
        """Text heat-map rendering (the repository's Figures 3–4 stand-in)."""
        rows = max(1, int(columns * self.height / self.width / 2))
        shades = " .:-=+*#%@"
        dense = self.salience_map()
        cell_h = self.height / rows
        cell_w = self.width / columns
        lines = []
        for row in range(rows):
            y0, y1 = int(row * cell_h), max(int((row + 1) * cell_h), int(row * cell_h) + 1)
            line = []
            for col in range(columns):
                x0, x1 = int(col * cell_w), max(int((col + 1) * cell_w), int(col * cell_w) + 1)
                value = dense[y0:y1, x0:x1].mean()
                line.append(value)
            lines.append(line)
        flat = np.array(lines)
        top = flat.max() or 1.0
        out = []
        for line in lines:
            out.append(
                "".join(
                    shades[min(int(v / top * (len(shades) - 1)), len(shades) - 1)]
                    for v in line
                )
            )
        return "\n".join(out)

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "width": self.width,
            "height": self.height,
            "background_rate": self.background_rate,
            "hotspots": [
                {"x": h.x, "y": h.y, "spread": h.spread, "weight": h.weight}
                for h in self.hotspots
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "StudyImage":
        """Inverse of :meth:`to_json`."""
        return cls(
            name=data["name"],
            width=int(data["width"]),
            height=int(data["height"]),
            background_rate=float(data.get("background_rate", 0.15)),
            hotspots=tuple(
                Hotspot(
                    x=float(h["x"]),
                    y=float(h["y"]),
                    spread=float(h["spread"]),
                    weight=float(h["weight"]),
                )
                for h in data["hotspots"]
            ),
        )


def _zipf_weights(count: int, exponent: float) -> Sequence[float]:
    """Zipf-like popularity profile: weight_k ∝ 1 / k^exponent."""
    return [1.0 / (k**exponent) for k in range(1, count + 1)]


def random_image(
    name: str,
    seed: int,
    width: int = PAPER_IMAGE_WIDTH,
    height: int = PAPER_IMAGE_HEIGHT,
    hotspot_count: int = 18,
    spread_range: Tuple[float, float] = (3.0, 7.0),
    zipf_exponent: float = 0.8,
    background_rate: float = 0.15,
    margin: int = 12,
) -> StudyImage:
    """Generate a reproducible random study image.

    Hotspot centers are uniform over the image interior (keeping *margin*
    pixels from the border so clicks aimed at them rarely clamp), spreads
    uniform in *spread_range*, weights Zipf with the given exponent (larger
    exponent → a few dominant hotspots → stronger dictionary attacks).
    """
    if hotspot_count < 1:
        raise ParameterError(f"hotspot_count must be >= 1, got {hotspot_count}")
    if margin * 2 >= min(width, height):
        raise ParameterError("margin too large for the image size")
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(hotspot_count, zipf_exponent)
    spots = []
    for k in range(hotspot_count):
        x = float(rng.uniform(margin, width - margin))
        y = float(rng.uniform(margin, height - margin))
        spread = float(rng.uniform(*spread_range))
        spots.append(Hotspot(x=x, y=y, spread=spread, weight=weights[k]))
    return StudyImage(
        name=name,
        width=width,
        height=height,
        hotspots=tuple(spots),
        background_rate=background_rate,
    )


def cars_image() -> StudyImage:
    """The *Cars* stand-in (paper Figure 3).

    Modeled as object-dense and concentrated: 20 hotspots with a fairly
    steep popularity profile and a small uniform background.  This is the
    image on which the paper's dictionary attacks did best (up to 79 % of
    passwords at r = 9 under Robust Discretization); the parameters here
    were calibrated so the simulated attack lands in that regime (see
    EXPERIMENTS.md).
    """
    return random_image(
        name="cars",
        seed=20080401,
        hotspot_count=20,
        spread_range=(5.0, 10.0),
        zipf_exponent=0.9,
        background_rate=0.12,
    )


def pool_image() -> StudyImage:
    """The *Pool* stand-in (paper Figure 4).

    Modeled as more diffuse: 28 hotspots with larger spreads, a flatter
    popularity profile and a larger idiosyncratic background — dictionary
    attacks succeed noticeably less often than on *Cars*.
    """
    return random_image(
        name="pool",
        seed=20080402,
        hotspot_count=28,
        spread_range=(6.5, 12.0),
        zipf_exponent=0.6,
        background_rate=0.20,
    )


def canonical_images() -> Tuple[StudyImage, StudyImage]:
    """The two study images in paper order: (cars, pool)."""
    return cars_image(), pool_image()
