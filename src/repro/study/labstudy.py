"""Lab-study simulation: the attacker's seed sample for dictionary attacks.

The paper's human-seeded dictionary attack (§5.1) uses passwords "collected
from an earlier lab study": **30 passwords per image**, whose 150
click-points seed a dictionary of all ordered 5-tuples (≈ 2^36 entries per
image).  The crucial property is that the lab population clicks on the same
hotspots as the field population (same images, same human behaviour) while
being a *disjoint* set of people.

:func:`generate_lab_study` therefore reuses the exact selection machinery of
the field study — same image, same selection model — under an independent
seed and disjoint user-id range.  Nothing about the attack code knows the
two populations share a generator; it only sees click coordinates, as the
paper's attackers only saw collected passwords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ParameterError
from repro.study.clickmodel import DEFAULT_SELECTION_MODEL, SelectionModel
from repro.study.dataset import PasswordSample
from repro.study.image import StudyImage

__all__ = ["LabStudyConfig", "generate_lab_study", "lab_click_points"]

#: User ids for lab participants start here, keeping them disjoint from any
#: realistic field study population.
_LAB_USER_BASE = 1_000_000


@dataclass(frozen=True, slots=True)
class LabStudyConfig:
    """Parameters of a simulated lab study (per image).

    Defaults match the paper: 30 passwords of 5 clicks for one image.
    """

    passwords: int = 30
    clicks_per_password: int = 5
    seed: int = 1387
    selection_model: SelectionModel = DEFAULT_SELECTION_MODEL

    def __post_init__(self) -> None:
        if self.passwords < 1:
            raise ParameterError(f"passwords must be >= 1, got {self.passwords}")
        if self.clicks_per_password < 1:
            raise ParameterError(
                f"clicks_per_password must be >= 1, got {self.clicks_per_password}"
            )


def generate_lab_study(
    image: StudyImage, config: LabStudyConfig = LabStudyConfig()
) -> Tuple[PasswordSample, ...]:
    """Simulate the lab study for one image.

    The seed is combined with a stable hash of the image name so the Cars
    and Pool lab samples differ even under the same configuration.
    """
    name_salt = sum(ord(c) * (31**k) for k, c in enumerate(image.name)) % (2**31)
    rng = np.random.default_rng((config.seed, name_salt))
    samples = []
    for index in range(config.passwords):
        points = config.selection_model.sample_password(
            image, rng, clicks=config.clicks_per_password
        )
        samples.append(
            PasswordSample(
                password_id=index,
                user_id=_LAB_USER_BASE + index,
                image_name=image.name,
                points=points,
            )
        )
    return tuple(samples)


def lab_click_points(
    samples: Tuple[PasswordSample, ...]
) -> Tuple["Point", ...]:  # noqa: F821 - forward name in docstring only
    """Flatten lab passwords into the attacker's click-point pool.

    For the paper's configuration this is the 150-point pool (30 passwords
    × 5 clicks) from which all ordered 5-tuples form the attack dictionary.
    """
    from repro.geometry.point import Point  # local import to avoid cycle noise

    points: list[Point] = []
    for sample in samples:
        points.extend(sample.points)
    return tuple(points)
