"""Offline dictionary attacks against stolen password files (paper §5.1).

Two attacker models:

* **Known grid identifiers** (the realistic file-theft case): the password
  file stores clear grid identifiers next to each hash, so every dictionary
  entry is discretized directly under the victim's stored public material —
  one hash per entry.  This is the attack behind Figures 7 and 8.
* **Hash-only** (grid identifiers somehow withheld): each entry must be
  hashed once per possible grid-identifier combination.  Robust
  Discretization has only 3 grids per click-point; Centered Discretization
  has (2r)² per click-point, so withholding identifiers costs the attacker
  vastly more against Centered (§5.1 last paragraph) — quantified here as a
  work-factor model.

The cracked/not-cracked decision per password is computed in closed form
(see :mod:`repro.attacks.dictionary`); the attacker's hashing cost is
reported as a model, since actually grinding 2^36 SHA-256 calls adds
nothing scientifically.

Implementation note: per-position acceptance runs through the batch
engine (:mod:`repro.core.batch`) — one ``verify_batch`` call answers
"which seed points fall in this stored cell?" for the whole pool.  Cell
boundaries have denominators in {1, 2, 3, 6} while seed coordinates are
integers, so the engine's float comparisons are exact-safe (the nearest
boundary-to-integer gap, 1/6 px, dwarfs float error).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batch import as_point_array
from repro.core.scheme import DiscretizationScheme
from repro.crypto.encoding import encode_scalar
from repro.crypto.records import VerificationRecord
from repro.errors import AttackError
from repro.passwords.system import StoredPassword
from repro.study.dataset import PasswordSample
from repro.attacks.dictionary import HumanSeededDictionary

__all__ = [
    "PasswordAttackOutcome",
    "OfflineAttackResult",
    "StolenAccountOutcome",
    "StolenFileAttackResult",
    "GuessBatch",
    "prepare_guess_batch",
    "offline_attack_known_identifiers",
    "offline_attack_stolen_file",
    "parse_password_file",
    "hash_only_work_factor",
]


@dataclass(frozen=True, slots=True)
class PasswordAttackOutcome:
    """Attack outcome for one password."""

    password_id: int
    cracked: bool
    matching_entries: int


@dataclass(frozen=True)
class OfflineAttackResult:
    """Aggregate result of an offline dictionary attack on one image.

    Attributes
    ----------
    scheme_name, image_name:
        Attack context.
    outcomes:
        Per-password outcomes, in dataset order.
    dictionary_bits:
        log2 of the dictionary size (≈ 36 for the paper's configuration).
    hash_operations_modeled:
        The enumeration cost the attacker would pay: dictionary size ×
        passwords attacked (known-identifier case), before any early-stop.
    """

    scheme_name: str
    image_name: str
    outcomes: Tuple[PasswordAttackOutcome, ...]
    dictionary_bits: float
    hash_operations_modeled: int

    @property
    def attacked(self) -> int:
        """Number of passwords attacked."""
        return len(self.outcomes)

    @property
    def cracked(self) -> int:
        """Number of passwords cracked by at least one entry."""
        return sum(1 for outcome in self.outcomes if outcome.cracked)

    @property
    def cracked_fraction(self) -> float:
        """Fraction of passwords cracked — the y-axis of Figures 7–8."""
        if not self.outcomes:
            return 0.0
        return self.cracked / self.attacked

    @property
    def mean_matching_entries(self) -> float:
        """Average number of dictionary entries that crack a password."""
        if not self.outcomes:
            return 0.0
        return sum(o.matching_entries for o in self.outcomes) / self.attacked

    @property
    def dictionary_entries(self) -> int:
        """Exact dictionary size N (``hash_operations_modeled`` is N × attacked)."""
        if not self.outcomes:
            return 0
        return self.hash_operations_modeled // self.attacked

    def expected_guess_rank(self, outcome: PasswordAttackOutcome) -> float:
        """Expected guesses before *outcome*'s password falls, ``(N+1)/(m+1)``.

        With ``m`` matching entries in a dictionary of ``N``, a uniform
        random-order enumeration expects ``(N+1)/(m+1)`` guesses to hit the
        first match.  For an uncracked password (``m = 0``) this degrades
        to ``N + 1`` — one past exhausting the dictionary — which is the
        natural "never hits" sentinel on the same scale.
        """
        if outcome.matching_entries < 0:
            raise AttackError(
                f"matching_entries must be >= 0, got {outcome.matching_entries}"
            )
        return (self.dictionary_entries + 1) / (outcome.matching_entries + 1)


def _validate_known_identifier_targets(
    scheme: DiscretizationScheme,
    passwords: Sequence[PasswordSample],
    dictionary: HumanSeededDictionary,
) -> str:
    """Pre-flight checks shared by the serial and sharded attack paths.

    Returns the single image name the targets live on.  Kept in one place
    so the parallel runner surfaces exactly the errors the serial path
    would — from the caller's process, before any worker forks.
    """
    if scheme.dim != 2:
        raise AttackError(f"attack expects a 2-D scheme, got {scheme.dim}-D")
    if not passwords:
        raise AttackError("no passwords to attack")
    image_names = {p.image_name for p in passwords}
    if len(image_names) != 1:
        raise AttackError(
            f"passwords span multiple images: {sorted(image_names)}"
        )
    image_name = image_names.pop()
    if dictionary.image_name and dictionary.image_name != image_name:
        raise AttackError(
            f"dictionary was seeded on {dictionary.image_name!r}, targets are "
            f"on {image_name!r}"
        )
    for password in passwords:
        if len(password.points) != dictionary.tuple_length:
            raise AttackError(
                f"password {password.password_id} has {len(password.points)} "
                f"clicks, dictionary tuples have {dictionary.tuple_length}"
            )
    return image_name


def offline_attack_known_identifiers(
    scheme: DiscretizationScheme,
    passwords: Sequence[PasswordSample],
    dictionary: HumanSeededDictionary,
    count_entries: bool = True,
) -> OfflineAttackResult:
    """Run the known-grid-identifier offline attack (Figures 7–8).

    For each target password, enrolls its original points under *scheme*
    (reconstructing exactly the public material + acceptance cells a stolen
    password file implies), then decides crackedness against the dictionary
    in closed form: position j is *matchable* iff some seed point lies in
    the stored cell of click j, and the password is cracked iff distinct
    seed points can fill all positions.

    Set ``count_entries=False`` to skip the exact matching-entry permanent
    (the boolean decision is much cheaper).
    """
    image_name = _validate_known_identifier_targets(scheme, passwords, dictionary)

    outcomes: List[PasswordAttackOutcome] = []
    for password in passwords:
        # Whole-password batch enrollment + one (positions, N) mask per
        # password: a single kernel call answers every position at once.
        # The kernel is pinned to numpy: this pipeline interleaves host
        # python (match sets, the permanent) with every kernel output.
        enrollment = scheme.batch(xp=np).enroll(password.points)
        mask = dictionary.match_mask_batch(scheme, enrollment)
        match_lists = list(HumanSeededDictionary.match_sets_from_mask(mask))
        cracked = HumanSeededDictionary.has_injective_assignment(match_lists)
        if count_entries and cracked:
            matching = HumanSeededDictionary.count_injective_assignments(match_lists)
        else:
            matching = 0
        outcomes.append(
            PasswordAttackOutcome(
                password_id=password.password_id,
                cracked=cracked,
                matching_entries=matching,
            )
        )

    return OfflineAttackResult(
        scheme_name=scheme.name,
        image_name=image_name,
        outcomes=tuple(outcomes),
        dictionary_bits=dictionary.bits,
        hash_operations_modeled=dictionary.entry_count * len(passwords),
    )


@dataclass(frozen=True, slots=True)
class StolenAccountOutcome:
    """Hash-grinding outcome for one stolen account record.

    ``hash_units`` is the iterated-hash work the guesses cost:
    ``guesses_hashed × record.hasher.iterations``.  Records enrolled under
    a ``hash_cost_factor=k`` defense self-describe k× the iterations, so
    the grind bill scales by k automatically.
    """

    username: str
    cracked: bool
    guesses_hashed: int
    hash_units: int = 0


@dataclass(frozen=True)
class StolenFileAttackResult:
    """Result of grinding a stolen password file with a guess budget.

    Unlike :class:`OfflineAttackResult` (closed-form, needs the victims'
    original click-points), this attack sees only what a storage backend's
    ``dump`` reveals — public material, salts, digests — and must pay one
    hash per guess, exactly the attacker of §5.1.
    """

    scheme_name: str
    guess_budget: int
    outcomes: Tuple[StolenAccountOutcome, ...]

    @property
    def attacked(self) -> int:
        """Number of stolen records attacked."""
        return len(self.outcomes)

    @property
    def cracked(self) -> int:
        """Number of records cracked within the budget."""
        return sum(1 for o in self.outcomes if o.cracked)

    @property
    def cracked_fraction(self) -> float:
        """Fraction of stolen records cracked within the budget."""
        if not self.outcomes:
            return 0.0
        return self.cracked / self.attacked

    @property
    def hash_operations(self) -> int:
        """Hashes the attacker actually computed (early-stop included)."""
        return sum(o.guesses_hashed for o in self.outcomes)

    @property
    def hash_units(self) -> int:
        """Iterated-hash work actually paid (guesses × per-record iterations)."""
        return sum(o.hash_units for o in self.outcomes)

    @property
    def hash_units_per_crack(self) -> float:
        """Attacker grind cost per cracked record; ``inf`` when none cracked.

        The defense-matrix sweep's offline cost-per-compromise axis: a
        ``hash_cost_factor=k`` deployment multiplies it by ~k, and a
        pepper withheld from the stolen material drives it to ``inf``
        (the grind fails closed — no guess can match the keyed digest).
        """
        cracked = self.cracked
        if cracked == 0:
            return float("inf")
        return self.hash_units / cracked


def parse_password_file(payload: str) -> Dict[str, StoredPassword]:
    """Parse a password file dumped by any storage backend.

    The payload is the JSON produced by
    :meth:`~repro.passwords.storage.StorageBackend.dump` /
    :meth:`~repro.passwords.store.PasswordStore.dump_records` — the
    attacker-visible artifact, identical across memory/SQLite/JSONL
    backends.
    """
    from repro.errors import ReproError

    try:
        data = json.loads(payload)
        return {
            username: StoredPassword.from_json(stored)
            for username, stored in data.items()
        }
    except (
        json.JSONDecodeError,
        AttributeError,
        KeyError,
        TypeError,
        ReproError,  # e.g. VerificationError from a malformed nested record
    ) as exc:
        raise AttackError(f"malformed stolen password file: {exc}") from exc


def _validate_stolen_records(
    records: Mapping[str, StoredPassword],
    dictionary: HumanSeededDictionary,
    guess_budget: int,
) -> None:
    """Pre-flight checks shared by the serial and sharded grind paths."""
    if guess_budget < 1:
        raise AttackError(f"guess_budget must be >= 1, got {guess_budget}")
    if not records:
        raise AttackError("stolen password file holds no records")
    for username in sorted(records):
        if records[username].clicks != dictionary.tuple_length:
            raise AttackError(
                f"record {username!r} has {records[username].clicks} clicks, "
                f"dictionary tuples have {dictionary.tuple_length}"
            )


#: Guesses located per kernel call in the stolen-file grind.  Bounds peak
#: memory to ``chunk × clicks`` rows (instead of ``budget × clicks``) and
#: bounds the geometry wasted on an early-stopped account to one chunk.
GUESS_CHUNK = 128


@dataclass(frozen=True)
class GuessBatch:
    """Precomputed guess arrays for the stolen-file grind, reusable as-is.

    Enumerating ``prioritized_entries`` and packing their points into a
    float64 array is pure per-dictionary work — it does not depend on the
    records under attack — so the grind computes it **once** and reuses it
    across every account, every task, and (in the parallel engine) every
    task a worker pulls from the queue.  Slices handed to the kernel are
    numpy views into :attr:`points` (zero-copy).

    Attributes
    ----------
    entries:
        The prioritized dictionary entries, best-first, already truncated
        to the guess budget.
    points:
        ``(len(entries) × clicks, dim)`` read-only float64 array of every
        entry's points, concatenated in entry order.
    clicks:
        Points per entry (the dictionary's ``tuple_length``).
    """

    entries: Tuple[Tuple, ...]
    points: np.ndarray
    clicks: int

    @property
    def guesses(self) -> int:
        """Number of prioritized entries in the batch."""
        return len(self.entries)

    def point_rows(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy view of the point rows for entries ``start:stop``."""
        return self.points[start * self.clicks : stop * self.clicks]


def prepare_guess_batch(
    dictionary: HumanSeededDictionary, guess_budget: int, dim: int
) -> GuessBatch:
    """Enumerate and pack the grind's guesses once, for reuse everywhere.

    Raises :class:`AttackError` when the dictionary yields no entries.
    The result is safe to share across accounts, calls and (forked)
    worker processes: the array is read-only and the entries are frozen.
    """
    entries = list(dictionary.prioritized_entries(guess_budget))
    if not entries:
        raise AttackError("dictionary yielded no entries")
    points = as_point_array(
        [point for entry in entries for point in entry], dim
    )
    points.flags.writeable = False
    return GuessBatch(
        entries=tuple(entries), points=points, clicks=dictionary.tuple_length
    )


#: Per-process memo of canonical int encodings (``i:len:text`` bytes).
#: Secret cell indices repeat massively across guesses and accounts, so
#: the grind's per-guess encoding cost collapses to dict lookups.
_INT_ENCODINGS: Dict[int, bytes] = {}


def _encoded_int(value: int) -> bytes:
    """Canonical encoding of one int, memoized (see ``encode_scalar``)."""
    cached = _INT_ENCODINGS.get(value)
    if cached is None:
        text = str(value)
        cached = f"i:{len(text)}:{text}".encode("ascii")
        _INT_ENCODINGS[value] = cached
    return cached


def _record_matcher(
    record: VerificationRecord, secret_len: int, pepper: bytes = b""
) -> Callable[[Sequence[int]], bool]:
    """Precompiled per-record digest check, bit-identical to ``matches``.

    ``record.matches`` re-encodes the record's public scalars (Fractions
    included) and re-hashes the shared prefix on **every** guess; at 2¹⁰
    guesses per account that encoding dominates the grind.  This builds,
    once per record:

    * the canonical byte prefix (sequence header + encoded publics) via
      the real :func:`~repro.crypto.encoding.encode_scalar`, so the bytes
      are identical to ``encode_scalars(combine_material(...))``;
    * a hash object pre-fed with ``salt + prefix`` whose ``copy()`` is the
      classic midstate trick — each guess pays only the secret-index
      suffix, not the whole material;

    and returns a closure mapping a secret index row to the same boolean
    ``record.matches(row, pepper=pepper)`` produces (iterated hashing and
    the peppered outer hash included).  Equivalence is pinned by
    ``tests/test_attacks_offline_online.py``.
    """
    hasher = record.hasher
    total = len(record.public) + secret_len
    prefix = f"n:{total};".encode("ascii") + b"".join(
        encode_scalar(value) for value in record.public
    )
    constructor = getattr(hashlib, hasher.algorithm, None)
    if constructor is None:  # non-attribute algorithms (e.g. ripemd160)
        constructor = partial(hashlib.new, hasher.algorithm)
    base = constructor(hasher.salt + prefix)
    rounds = hasher.iterations - 1
    expected = record.digest

    def matches(secret_row: Sequence[int]) -> bool:
        state = base.copy()
        state.update(b"".join(map(_encoded_int, secret_row)))
        if rounds or pepper:
            digest = state.digest()
            for _ in range(rounds):
                digest = constructor(digest).digest()
            if pepper:
                digest = constructor(pepper + digest).digest()
            return digest.hex() == expected
        return state.hexdigest() == expected

    return matches


def _grind_account(
    kernel,
    stored: StoredPassword,
    guesses: GuessBatch,
    start: int,
    stop: int,
    pepper: bytes = b"",
) -> Tuple[Optional[int], int]:
    """Grind one account over guess ranks ``[start, stop)``.

    Returns ``(rank, hashed)``: *rank* is the global index of the first
    matching entry (``None`` if nothing in the range matches) and *hashed*
    counts the guesses actually hashed — including the match, exactly the
    serial early-stop accounting.  Ranks beyond the batch contribute
    nothing, so queue-mode guess windows clip for free.
    """
    stop = min(stop, guesses.guesses)
    if start >= stop:
        return None, 0
    public_rows = kernel.public_rows(stored.publics)
    matcher = None
    hashed = 0
    for chunk_start in range(start, stop, GUESS_CHUNK):
        chunk_stop = min(chunk_start + GUESS_CHUNK, stop)
        chunk_points = guesses.point_rows(chunk_start, chunk_stop)
        reps = chunk_stop - chunk_start
        if public_rows.ndim == 1:  # robust: flat grid identifiers
            tiled_public = np.tile(public_rows, reps)
        else:
            tiled_public = np.tile(public_rows, (reps, 1))
        located = kernel.locate(chunk_points, tiled_public).reshape(reps, -1)
        if matcher is None:
            matcher = _record_matcher(stored.record, located.shape[1], pepper)
        for offset, row in enumerate(located.tolist()):
            hashed += 1
            if matcher(row):
                return chunk_start + offset, hashed
    return None, hashed


def offline_attack_stolen_file(
    scheme: DiscretizationScheme,
    stolen: Union[str, Mapping[str, StoredPassword]],
    dictionary: HumanSeededDictionary,
    guess_budget: int = 1000,
    pepper: bytes = b"",
    guesses: Optional[GuessBatch] = None,
) -> StolenFileAttackResult:
    """Grind a stolen password file with popularity-ordered guesses.

    For each stolen record the attacker discretizes candidate entries
    under the record's clear public material — one vectorized ``locate``
    per :data:`GUESS_CHUNK`-guess chunk, slicing zero-copy views out of a
    :class:`GuessBatch` prepared once per run — then pays one salted hash
    per entry through a precompiled per-record matcher (midstate hashing;
    bit-identical to ``record.matches``), stopping at the first match:
    cracked accounts never locate, let alone hash, the chunks behind the
    early stop.  This is the deployed §5.1 threat executed end to end:
    steal via a backend's ``dump``, attack offline without throttling.

    *stolen* is either the JSON payload itself or an already-parsed
    ``{username: StoredPassword}`` mapping.

    *pepper* is the deployment's secret pepper **if the attacker also
    stole it** (server-config compromise).  The password file itself never
    contains it, so by default the grind against a peppered deployment
    fails closed: every candidate digest misses the keyed outer hash and
    nothing cracks, at full grind cost.

    *guesses* optionally supplies a :func:`prepare_guess_batch` result
    built from the **same dictionary and budget** (callers grinding many
    password files — the parallel engine's workers, the million-account
    demo's enrollment waves — prepare once and reuse); by default the
    batch is prepared here.
    """
    records = parse_password_file(stolen) if isinstance(stolen, str) else dict(stolen)
    _validate_stolen_records(records, dictionary, guess_budget)

    batch = (
        guesses
        if guesses is not None
        else prepare_guess_batch(dictionary, guess_budget, scheme.dim)
    )
    if batch.clicks != dictionary.tuple_length:
        raise AttackError(
            f"guess batch has {batch.clicks}-click entries, dictionary "
            f"tuples have {dictionary.tuple_length}"
        )
    # Pinned to numpy: the grind tiles public rows with host np.tile and
    # hashes per located row — a device backend would only add transfers.
    kernel = scheme.batch(xp=np)

    outcomes: List[StolenAccountOutcome] = []
    for username in sorted(records):
        stored = records[username]
        rank, hashed = _grind_account(
            kernel, stored, batch, 0, batch.guesses, pepper
        )
        outcomes.append(
            StolenAccountOutcome(
                username=username,
                cracked=rank is not None,
                guesses_hashed=hashed,
                hash_units=hashed * stored.record.hasher.iterations,
            )
        )
    return StolenFileAttackResult(
        scheme_name=scheme.name,
        guess_budget=guess_budget,
        outcomes=tuple(outcomes),
    )


def hash_only_work_factor(
    scheme: DiscretizationScheme, clicks: int = 5
) -> Dict[str, float]:
    """Work multiplier when grid identifiers are *not* known (§5.1).

    Without identifiers, each dictionary entry must be hashed under every
    possible grid-identifier combination:

    * Robust: 3 grids per click  → 3^clicks combinations;
    * Centered: (2r)^dim offsets per click → ((2r)^dim)^clicks.

    Returns the per-entry multiplier and its log2 ("extra bits" of attacker
    work).  For 13×13 centered squares this is 169^5 ≈ 2^37 — the paper's
    point that withholding identifiers hurts attacks on Centered far more.
    """
    if clicks < 1:
        raise AttackError(f"clicks must be >= 1, got {clicks}")
    from repro.core.centered import CenteredDiscretization
    from repro.core.robust import RobustDiscretization
    from repro.core.static import StaticGridScheme

    if isinstance(scheme, RobustDiscretization):
        per_click = float(scheme.grid_count)
    elif isinstance(scheme, CenteredDiscretization):
        per_click = float(scheme.cell_size) ** scheme.dim
    elif isinstance(scheme, StaticGridScheme):
        per_click = 1.0  # a static grid has a single, known grid
    else:
        raise AttackError(f"unknown scheme type {type(scheme).__name__}")
    multiplier = per_click**clicks
    return {
        "per_click_identifiers": per_click,
        "multiplier": multiplier,
        "extra_bits": math.log2(multiplier) if multiplier > 0 else 0.0,
    }
