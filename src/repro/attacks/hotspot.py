"""Hotspot-harvesting attacks (paper §2.1).

Two attacker capabilities from the literature the paper cites:

* **Human-seeded harvesting** (Thorpe & van Oorschot 2007): cluster
  click-points observed from *some* users to find the image's hotspots,
  then guess other users' passwords from the cluster centers.  Implemented
  by :func:`harvest_hotspots` (greedy density-peak extraction) +
  :func:`hotspot_seed_points`.
* **Automated image processing** (Dirik et al. 2007): predict likely
  click-points from the image alone.  Our stand-in reads peaks directly off
  the synthetic salience map (:func:`salience_hotspots`) — the synthetic
  equivalent of a perfect saliency detector, an *upper bound* on automated
  attacks.

Both produce seed-point pools that plug into
:class:`~repro.attacks.dictionary.HumanSeededDictionary`, so the offline
and online attack machinery runs unchanged on harvested or automated seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.batch import as_point_array
from repro.core.scheme import DiscretizationScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample
from repro.study.image import StudyImage
from repro.attacks.dictionary import HumanSeededDictionary

__all__ = [
    "HarvestedHotspot",
    "harvest_hotspots",
    "hotspot_seed_points",
    "hotspot_coverage",
    "salience_hotspots",
    "dictionary_from_hotspots",
]


@dataclass(frozen=True, slots=True)
class HarvestedHotspot:
    """A cluster of observed click-points: center and support."""

    x: int
    y: int
    support: int


def harvest_hotspots(
    observed: Sequence[PasswordSample],
    radius: int = 9,
    max_hotspots: int = 60,
) -> Tuple[HarvestedHotspot, ...]:
    """Greedy density-peak clustering of observed click-points.

    Repeatedly takes the point with the most neighbours within Chebyshev
    *radius* as a hotspot center, removes the neighbourhood, and continues.
    Simple, deterministic, and faithful to how hotspot lists were built in
    the human-seeded-attack literature.

    The pairwise Chebyshev adjacency is computed once up front and
    neighbour counts are maintained incrementally as neighbourhoods are
    claimed, so extraction is O(N²) total instead of O(N²) per hotspot.
    """
    if radius < 0:
        raise AttackError(f"radius must be >= 0, got {radius}")
    if max_hotspots < 1:
        raise AttackError(f"max_hotspots must be >= 1, got {max_hotspots}")
    points: List[Tuple[int, int]] = []
    for sample in observed:
        for point in sample.points:
            points.append((int(point.x), int(point.y)))
    if not points:
        raise AttackError("no observed click-points to harvest")

    coords = np.array(points, dtype=np.int64)
    within = (
        np.maximum(
            np.abs(coords[:, 0][:, None] - coords[:, 0][None, :]),
            np.abs(coords[:, 1][:, None] - coords[:, 1][None, :]),
        )
        <= radius
    )
    alive = np.ones(len(coords), dtype=bool)
    counts = within.sum(axis=1)  # neighbour counts among live points
    hotspots: List[HarvestedHotspot] = []
    while alive.any() and len(hotspots) < max_hotspots:
        # argmax over live points only; ties break toward the lowest
        # original index, like the per-round recomputation did.
        best = int(np.argmax(np.where(alive, counts, -1)))
        hotspots.append(
            HarvestedHotspot(
                x=int(coords[best, 0]),
                y=int(coords[best, 1]),
                support=int(counts[best]),
            )
        )
        # Remove the claimed neighbourhood and discount its members from
        # every remaining point's neighbour count.
        removed = alive & within[best]
        counts -= within[:, removed].sum(axis=1)
        alive &= ~removed
    return tuple(hotspots)


def hotspot_seed_points(
    hotspots: Sequence[HarvestedHotspot], minimum_support: int = 2
) -> Tuple[Point, ...]:
    """Seed-point pool from harvested hotspots, most-supported first."""
    chosen = [h for h in hotspots if h.support >= minimum_support]
    chosen.sort(key=lambda h: -h.support)
    if not chosen:
        raise AttackError(
            f"no hotspot reaches minimum_support={minimum_support}"
        )
    return tuple(Point.xy(h.x, h.y) for h in chosen)


def hotspot_coverage(
    scheme: DiscretizationScheme,
    hotspots: Sequence[HarvestedHotspot],
    targets: Sequence[PasswordSample],
) -> float:
    """Fraction of target click-points captured by hotspot-centered cells.

    Enrolls each hotspot center under *scheme* and asks, via the batch
    engine, what fraction of all target users' click-points would verify
    against at least one of those enrollments — i.e. how much of the
    population's clicking behaviour an attacker guessing only hotspots
    already covers.  Higher coverage means the image/scheme combination
    leaks more of its practical password space to hotspot guessing.
    """
    if not hotspots:
        raise AttackError("no hotspots to measure coverage for")
    clicks: List[Point] = []
    for sample in targets:
        clicks.extend(sample.points)
    if not clicks:
        raise AttackError("no target click-points")
    kernel = scheme.batch(xp=np)  # host pipeline: masks accumulate in np
    points = as_point_array(clicks, scheme.dim)
    covered = np.zeros(len(points), dtype=bool)
    for hotspot in hotspots:
        enrollment = scheme.enroll(Point.xy(hotspot.x, hotspot.y))
        covered |= kernel.accepts(enrollment, points)
    return float(covered.mean())


def salience_hotspots(image: StudyImage, top_n: int = 30) -> Tuple[Point, ...]:
    """Automated-attack stand-in: top salience-map peaks of the image.

    Uses non-maximum suppression with a 9-px Chebyshev window over the
    dense salience map, returning up to *top_n* peak pixels ordered by
    salience.  Models an idealized Dirik-style image-processing attacker.
    """
    if top_n < 1:
        raise AttackError(f"top_n must be >= 1, got {top_n}")
    dense = image.salience_map()
    flat_order = np.argsort(dense, axis=None)[::-1]
    suppression = 9
    peaks: List[Tuple[int, int]] = []
    claimed = np.zeros_like(dense, dtype=bool)
    for flat_index in flat_order:
        y, x = np.unravel_index(int(flat_index), dense.shape)
        if claimed[y, x]:
            continue
        peaks.append((int(x), int(y)))
        if len(peaks) >= top_n:
            break
        y0 = max(0, y - suppression)
        y1 = min(dense.shape[0], y + suppression + 1)
        x0 = max(0, x - suppression)
        x1 = min(dense.shape[1], x + suppression + 1)
        claimed[y0:y1, x0:x1] = True
    return tuple(Point.xy(x, y) for x, y in peaks)


def dictionary_from_hotspots(
    seed_points: Sequence[Point],
    image_name: str,
    tuple_length: int = 5,
) -> HumanSeededDictionary:
    """Wrap a hotspot-derived seed pool as an attack dictionary."""
    return HumanSeededDictionary(
        seed_points=tuple(seed_points),
        tuple_length=tuple_length,
        image_name=image_name,
    )
