"""Information revealed by clear-text grid identifiers (paper §5.2).

Two quantities:

* **Storage/entropy of the identifier itself.**  Robust Discretization
  stores one of 3 grids (2 bits as stored; log2 3 ≈ 1.58 bits of entropy);
  Centered Discretization stores per-axis offsets — (2r)² possibilities in
  2-D, e.g. 8 bits for r = 8.  :func:`identifier_bits` reports both.
* **Visual prioritization leak.**  Knowing the identifier, an attacker can
  overlay the implied grid on the image: "Attackers may … see which parts of
  the image fall near the center of the grid-squares and thus may be able to
  predict which squares have a more likely click-point."  With Centered, a
  *single pixel* (the cell center) is pinned; with Robust, a central region.
  :func:`cell_salience_ranking` scores every cell by the salience mass near
  its center and returns the rank of the cell actually containing the user's
  click-point — the lower the typical rank, the more the identifier helps an
  attacker prioritize.  The paper conjectures (and our experiment confirms)
  that knowing the exact center pixel adds little over knowing the central
  region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.scheme import DiscretizationScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.image import StudyImage

__all__ = ["identifier_bits", "LeakageRanking", "cell_salience_ranking"]


def identifier_bits(scheme: DiscretizationScheme) -> dict:
    """Bits needed to store / entropy carried by the clear grid identifier.

    Returns ``{"choices": …, "entropy_bits": …, "storage_bits": …}`` per
    click-point.  ``storage_bits`` is the integer bit-width (what a record
    format pays); ``entropy_bits`` the log2 (what an attacker learns at
    most).
    """
    if isinstance(scheme, RobustDiscretization):
        choices = scheme.grid_count
    elif isinstance(scheme, CenteredDiscretization):
        choices = float(scheme.cell_size) ** scheme.dim
    else:
        choices = 1
    entropy = math.log2(choices) if choices > 1 else 0.0
    storage = math.ceil(entropy) if choices > 1 else 0
    return {
        "choices": choices,
        "entropy_bits": entropy,
        "storage_bits": storage,
    }


@dataclass(frozen=True, slots=True)
class LeakageRanking:
    """Prioritization-leak measurement for one click-point."""

    scheme_name: str
    true_cell_rank: int
    cells_considered: int

    @property
    def rank_fraction(self) -> float:
        """Rank of the true cell as a fraction of cells considered."""
        return self.true_cell_rank / self.cells_considered


def _grid_geometry(
    scheme: DiscretizationScheme, public: Tuple
) -> Tuple[float, float, float]:
    """(cell_size, offset_x, offset_y) of the grid implied by *public*."""
    size = float(scheme.cell_size)
    if isinstance(scheme, CenteredDiscretization):
        return size, float(public[0]), float(public[1])
    if isinstance(scheme, RobustDiscretization):
        grid = scheme.grid(int(public[0]))
        return size, float(grid.offsets[0]), float(grid.offsets[1])
    raise AttackError(f"unsupported scheme {type(scheme).__name__}")


def cell_salience_ranking(
    scheme: DiscretizationScheme,
    image: StudyImage,
    original: Point,
    center_window: int = 1,
) -> LeakageRanking:
    """Rank the true cell among all cells by salience near cell centers.

    The attacker overlays the grid implied by the clear identifier, scores
    each cell by the image salience in a ``(2·window+1)²`` patch around the
    cell center (window 1 ≈ "single pixel" for Centered; pass a larger
    window to model Robust's central region), and sorts descending.  The
    returned rank (1-based) of the cell containing *original* measures how
    much the identifier focuses the attacker's dictionary.
    """
    if center_window < 0:
        raise AttackError(f"center_window must be >= 0, got {center_window}")
    if not image.contains(original):
        raise AttackError(f"original {original!r} outside image")
    enrollment = scheme.enroll(original)
    size, off_x, off_y = _grid_geometry(scheme, enrollment.public)
    dense = image.salience_map()

    # Enumerate cells overlapping the image.
    first_col = math.floor((0 - off_x) / size)
    last_col = math.floor((image.width - 1 - off_x) / size)
    first_row = math.floor((0 - off_y) / size)
    last_row = math.floor((image.height - 1 - off_y) / size)

    true_index = tuple(enrollment.secret)
    scores: List[Tuple[float, Tuple[int, int]]] = []
    for col in range(first_col, last_col + 1):
        for row in range(first_row, last_row + 1):
            center_x = off_x + (col + 0.5) * size
            center_y = off_y + (row + 0.5) * size
            cx = int(round(center_x))
            cy = int(round(center_y))
            x0 = max(0, cx - center_window)
            x1 = min(image.width, cx + center_window + 1)
            y0 = max(0, cy - center_window)
            y1 = min(image.height, cy + center_window + 1)
            if x0 >= x1 or y0 >= y1:
                patch_score = 0.0
            else:
                patch_score = float(dense[y0:y1, x0:x1].sum())
            scores.append((patch_score, (col, row)))

    scores.sort(key=lambda item: (-item[0], item[1]))
    for rank, (_, cell) in enumerate(scores, start=1):
        if cell == true_index:
            return LeakageRanking(
                scheme_name=scheme.name,
                true_cell_rank=rank,
                cells_considered=len(scores),
            )
    raise AttackError("true cell not among enumerated cells (geometry bug)")
