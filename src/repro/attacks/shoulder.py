"""Shoulder-surfing attack model (paper §2.1).

"Shoulder-surfing … is a concern for click-based graphical passwords.  The
discretization scheme has little impact on the success of a shoulder-surfing
attack except that smaller grid-squares dictate that an attacker gaining
information through shoulder-surfing must make more accurate observations to
be successful."

We model the observer as seeing each click-point with isotropic Gaussian
error of standard deviation ``observation_sigma`` (distance, screen angle,
one quick glance), then replaying the observed points through the normal
login flow.  Monte-Carlo success rates as a function of observation accuracy
and grid size quantify the paper's sentence: at equal r, Centered's smaller
squares demand 3× more accurate observation for the same success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.scheme import DiscretizationScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample
from repro.study.image import StudyImage

__all__ = ["ShoulderSurfResult", "shoulder_surf_attack"]


@dataclass(frozen=True, slots=True)
class ShoulderSurfResult:
    """Monte-Carlo shoulder-surfing outcome for one configuration."""

    scheme_name: str
    observation_sigma: float
    trials: int
    successes: int

    @property
    def success_rate(self) -> float:
        """Fraction of observed-and-replayed logins that succeeded."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials


def shoulder_surf_attack(
    scheme: DiscretizationScheme,
    image: StudyImage,
    passwords: Sequence[PasswordSample],
    observation_sigma: float,
    replays_per_password: int = 5,
    seed: int = 7,
) -> ShoulderSurfResult:
    """Simulate shoulder-surfing followed by replay.

    For each password, the attacker observes every click-point once with
    Gaussian error and replays the observation; this repeats
    ``replays_per_password`` times with fresh observations (several
    attackers / several glances).  A replay succeeds iff every observed
    point verifies against the stored discretization.
    """
    if observation_sigma < 0:
        raise AttackError(
            f"observation_sigma must be >= 0, got {observation_sigma}"
        )
    if replays_per_password < 1:
        raise AttackError(
            f"replays_per_password must be >= 1, got {replays_per_password}"
        )
    if not passwords:
        raise AttackError("no passwords to attack")
    rng = np.random.default_rng(seed)
    trials = 0
    successes = 0
    for password in passwords:
        enrollments = [scheme.enroll(point) for point in password.points]
        for _ in range(replays_per_password):
            trials += 1
            ok = True
            for enrollment, original in zip(enrollments, password.points):
                if observation_sigma == 0:
                    observed = original
                else:
                    ox, oy = image.clamp(
                        float(original.x) + rng.normal(0, observation_sigma),
                        float(original.y) + rng.normal(0, observation_sigma),
                    )
                    observed = Point.xy(ox, oy)
                if not scheme.accepts(enrollment, observed):
                    ok = False
                    break
            if ok:
                successes += 1
    return ShoulderSurfResult(
        scheme_name=scheme.name,
        observation_sigma=observation_sigma,
        trials=trials,
        successes=successes,
    )
