"""Work-stealing parallel attack engine (ROADMAP: accelerator scale-out).

The offline attacks of §5.1 are embarrassingly parallel: every target
password (known-identifier attack) and every stolen record (password-file
grind) is decided independently of the others.  This module spreads those
workloads across ``concurrent.futures.ProcessPoolExecutor`` workers in one
of two modes and merges per-task results deterministically, so scaling out
never changes a single bit of the answer:

* ``mode="queue"`` (the default) splits the work into many small tasks —
  contiguous runs of :data:`task_size <ShardedAttackRunner.task_size>`
  targets, auto-sized from the workload and worker count — and pushes them
  through the executor's shared queue.  Idle workers pull the next task,
  so one expensive straggler (an uncracked account grinding the full
  budget while its neighbors early-stop at rank 3) no longer bounds the
  whole run the way a static contiguous shard does.  When there are too
  few accounts to go around, the grind additionally splits the *guess
  budget* into rank windows processed wave by wave — cracked accounts
  drop out of later waves, so early stopping skips whole tasks.
* ``mode="static"`` preserves the original shard-per-worker model
  (:func:`partition_evenly`): one contiguous task per worker, no guess
  windows.  It remains useful when per-target cost really is uniform and
  task-dispatch overhead is the dominant term.

Both modes reassemble results **by task index** — tasks are contiguous
runs of the serial iteration order, and a stolen account's outcome is
fully determined by the first matching global guess rank — so any worker
count and any task size is bit-identical to the serial attack
(property-tested in ``tests/test_attacks_parallel.py``).

Workers never receive live kernels, schemes or numpy arrays.  The run's
configuration travels **once per pool**, not per task: a pickled
:class:`SchemeSpec`/:class:`DictionarySpec` payload is installed by the
pool initializer, and each worker lazily builds (and caches, keyed by the
payload's hash) its scheme, batch kernel, dictionary and precomputed
guess-batch arrays.  Task submissions then carry only the target records
and a ``(task_index, rank window)`` — a few hundred bytes — which is what
makes small tasks affordable.

Worker failures are surfaced eagerly: any exception raised in a worker
(or a broken pool) is re-raised in the caller as
:class:`~repro.errors.AttackError` instead of hanging the merge.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import (
    GUESS_CHUNK,
    GuessBatch,
    OfflineAttackResult,
    StolenAccountOutcome,
    StolenFileAttackResult,
    _grind_account,
    _validate_known_identifier_targets,
    _validate_stolen_records,
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
    prepare_guess_batch,
)
from repro.core.scheme import DiscretizationScheme
from repro.crypto.encoding import scalar_from_json, scalar_to_json
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.obs import MetricsRegistry, get_registry
from repro.passwords.system import StoredPassword
from repro.study.dataset import PasswordSample

__all__ = [
    "AttackRunStats",
    "DictionarySpec",
    "SchemeSpec",
    "ShardedAttackRunner",
    "auto_task_size",
    "default_workers",
    "merge_offline_results",
    "merge_stolen_results",
    "partition_evenly",
]

_Item = TypeVar("_Item")


def default_workers() -> int:
    """CPU-aware default worker count.

    The schedulable CPU count (``os.sched_getaffinity``) where the
    platform provides it — a container pinned to 2 of 64 cores should
    default to 2 workers — and ``os.cpu_count()`` elsewhere (macOS and
    Windows have no affinity call, so the attribute is looked up rather
    than assumed); never less than 1.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # affinity exists but is unreadable for this process
            pass
    return max(1, os.cpu_count() or 1)


def partition_evenly(items: Sequence[_Item], shards: int) -> List[List[_Item]]:
    """Split *items* into *shards* contiguous, near-even, non-empty runs.

    The first ``len(items) % shards`` shards get one extra item.  Order is
    preserved, so concatenating the shards reproduces *items* exactly —
    the property the deterministic merge relies on.  *shards* must not
    exceed ``len(items)``.
    """
    if shards < 1:
        raise AttackError(f"shards must be >= 1, got {shards}")
    if shards > len(items):
        raise AttackError(
            f"cannot split {len(items)} item(s) into {shards} non-empty shards"
        )
    base, extra = divmod(len(items), shards)
    result: List[List[_Item]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        result.append(list(items[start : start + size]))
        start += size
    return result


def auto_task_size(items: int, workers: int) -> int:
    """Task size giving each worker ~8 tasks to steal from the queue.

    Eight tasks per worker is enough granularity that an unlucky worker
    stuck with the most expensive targets sheds the rest of its backlog
    to idle peers, while per-task dispatch overhead (one pickle of the
    target records, one future) stays amortized.  Clamped to
    ``[1, 8192]`` so degenerate workloads neither explode the task count
    nor collapse to one task.
    """
    if items < 1 or workers < 1:
        raise AttackError(
            f"need positive items and workers, got {items}, {workers}"
        )
    return max(1, min(math.ceil(items / (8 * workers)), 8192))


def _plan_guess_windows(
    guess_budget: int, account_tasks: int, workers: int
) -> List[Tuple[int, int]]:
    """Split the guess budget into rank windows when accounts are scarce.

    With plenty of account tasks (>= 4 per worker) the queue already
    balances itself and the grind runs each account's full budget in one
    task.  With few accounts — the 5-account file ground over a 2¹⁶
    budget — per-account cost dominates, so the budget is cut into
    :data:`~repro.attacks.offline.GUESS_CHUNK`-aligned rank windows
    processed as sequential waves: every (account task × window) is a
    queue task, and accounts cracked in wave *w* never enqueue wave
    *w + 1* — early stop skips whole tasks, exactly like the serial
    chunk-level early stop but across processes.
    """
    if account_tasks >= 4 * workers or guess_budget <= GUESS_CHUNK:
        return [(0, guess_budget)]
    wanted = max(1, math.ceil((4 * workers) / max(1, account_tasks)))
    size = max(GUESS_CHUNK, math.ceil(guess_budget / wanted))
    size = ((size + GUESS_CHUNK - 1) // GUESS_CHUNK) * GUESS_CHUNK
    return [
        (start, min(start + size, guess_budget))
        for start in range(0, guess_budget, size)
    ]


@dataclass(frozen=True)
class SchemeSpec:
    """Picklable recipe for rebuilding a scheme inside a worker process.

    Holds only primitive values (scheme kind, dimension, JSON-encoded
    rational parameters) — never kernels, grids or numpy state — so the
    pickled payload is a few hundred bytes and works under any
    multiprocessing start method.

    Attributes
    ----------
    kind:
        ``"centered"``, ``"robust"`` or ``"static"``.
    dim:
        Scheme dimensionality.
    r:
        JSON-encoded exact tolerance (centered/robust); ``None`` for static.
    cell_size, offset:
        JSON-encoded static-grid geometry; ``None`` otherwise.
    selection:
        Robust grid-selection policy value; ``None`` otherwise.
    """

    kind: str
    dim: int
    r: Optional[object] = None
    cell_size: Optional[object] = None
    offset: Optional[object] = None
    selection: Optional[str] = None

    @classmethod
    def from_scheme(
        cls, scheme: DiscretizationScheme, for_enrollment: bool = True
    ) -> "SchemeSpec":
        """Describe *scheme* as primitives, or raise :class:`AttackError`.

        With *for_enrollment* (the default), ``RANDOM_SAFE`` Robust
        schemes are rejected: their rng is live process-local state, so
        sharded enrollment could neither transport nor deterministically
        replay it.  Locate-only workloads (the stolen-file grind never
        enrolls) pass ``for_enrollment=False``, which normalizes
        ``RANDOM_SAFE`` to ``MOST_CENTERED`` — ``locate`` is
        selection-independent, so the rebuilt scheme behaves identically.
        """
        from repro.core.centered import CenteredDiscretization
        from repro.core.robust import GridSelection, RobustDiscretization
        from repro.core.static import StaticGridScheme

        if isinstance(scheme, CenteredDiscretization):
            return cls(kind="centered", dim=scheme.dim, r=scalar_to_json(scheme.r))
        if isinstance(scheme, RobustDiscretization):
            selection = scheme.selection
            if selection is GridSelection.RANDOM_SAFE:
                if for_enrollment:
                    raise AttackError(
                        "cannot shard a RANDOM_SAFE robust scheme: its rng is "
                        "process-local state and cannot be replayed "
                        "deterministically across workers"
                    )
                selection = GridSelection.MOST_CENTERED
            return cls(
                kind="robust",
                dim=scheme.dim,
                r=scalar_to_json(scheme.r),
                selection=selection.value,
            )
        if isinstance(scheme, StaticGridScheme):
            return cls(
                kind="static",
                dim=scheme.dim,
                cell_size=scalar_to_json(scheme.cell_size),
                offset=scalar_to_json(scheme.grid.offsets[0]),
            )
        raise AttackError(
            f"cannot build a worker spec for scheme type {type(scheme).__name__}"
        )

    def build(self) -> DiscretizationScheme:
        """Rebuild the scheme (workers call this once per run payload)."""
        from repro.core.centered import CenteredDiscretization
        from repro.core.robust import GridSelection, RobustDiscretization
        from repro.core.static import StaticGridScheme

        if self.kind == "centered":
            return CenteredDiscretization(self.dim, scalar_from_json(self.r))
        if self.kind == "robust":
            return RobustDiscretization(
                self.dim,
                scalar_from_json(self.r),
                selection=GridSelection(self.selection),
            )
        if self.kind == "static":
            return StaticGridScheme(
                self.dim,
                scalar_from_json(self.cell_size),
                offset=scalar_from_json(self.offset),
            )
        raise AttackError(f"unknown scheme spec kind {self.kind!r}")


@dataclass(frozen=True)
class DictionarySpec:
    """Picklable recipe for rebuilding the attack dictionary in a worker.

    Carries the seed pool as JSON-encoded coordinate tuples (exact through
    :func:`~repro.crypto.encoding.scalar_to_json`), not as
    :class:`~repro.geometry.point.Point` objects or the dictionary's cached
    numpy seed array — workers rebuild those themselves.
    """

    seed_points: Tuple[Tuple[object, ...], ...]
    tuple_length: int
    image_name: str

    @classmethod
    def from_dictionary(cls, dictionary: HumanSeededDictionary) -> "DictionarySpec":
        """Describe *dictionary* as primitives."""
        return cls(
            seed_points=tuple(
                tuple(scalar_to_json(coord) for coord in point)
                for point in dictionary.seed_points
            ),
            tuple_length=dictionary.tuple_length,
            image_name=dictionary.image_name,
        )

    def build(self) -> HumanSeededDictionary:
        """Rebuild the dictionary (workers call this once per run payload)."""
        return HumanSeededDictionary(
            seed_points=tuple(
                Point.of(*(scalar_from_json(coord) for coord in coords))
                for coords in self.seed_points
            ),
            tuple_length=self.tuple_length,
            image_name=self.image_name,
        )


@dataclass(frozen=True)
class _RunPayload:
    """Everything a worker must build exactly once for one run config.

    Pickled and shipped through the pool initializer (not per task);
    hashed to key both the parent's pool reuse and the worker's runtime
    cache.  ``guess_budget`` is ``None`` for known-identifier runs, which
    skips the guess-batch precompute.  The defense pepper deliberately
    travels per *task*, not here: it is a few bytes, and keeping it out
    of the payload lets the defense-matrix sweep reuse one pool (and one
    worker-side guess batch) across all 17 cells.
    """

    scheme_spec: SchemeSpec
    dictionary_spec: DictionarySpec
    guess_budget: Optional[int] = None
    count_entries: bool = True


class _WorkerRuntime:
    """Per-worker cache of live objects rebuilt from a :class:`_RunPayload`.

    Built lazily on the first task a worker pulls and reused for every
    later task with the same payload key: the scheme, its numpy batch
    kernel, the dictionary (whose prioritized-entry heap and seed array
    memoize internally) and — for stolen-file grinds — the
    :class:`~repro.attacks.offline.GuessBatch` arrays shared zero-copy
    across all of the worker's tasks.
    """

    def __init__(self, payload: _RunPayload) -> None:
        self.payload = payload
        self.scheme = payload.scheme_spec.build()
        self.dictionary = payload.dictionary_spec.build()
        self.kernel = self.scheme.batch(xp=np)
        self.guesses: Optional[GuessBatch] = (
            prepare_guess_batch(
                self.dictionary, payload.guess_budget, self.scheme.dim
            )
            if payload.guess_budget is not None
            else None
        )


#: Worker-process store of pickled run payloads, installed by the pool
#: initializer before any task runs (keyed by the payload's sha256).
_RUN_PAYLOADS: Dict[str, bytes] = {}

#: Worker-process cache of built runtimes, same keys as ``_RUN_PAYLOADS``.
_BUILT_RUNTIMES: Dict[str, _WorkerRuntime] = {}


def _install_run_payload(key: str, blob: bytes) -> None:
    """Pool initializer: stage the run payload in this worker process."""
    _RUN_PAYLOADS[key] = blob


def _runtime(key: str) -> _WorkerRuntime:
    """The worker's cached runtime for *key*, building it on first use."""
    runtime = _BUILT_RUNTIMES.get(key)
    if runtime is None:
        blob = _RUN_PAYLOADS.get(key)
        if blob is None:
            raise AttackError(
                "worker has no staged payload for this run "
                "(pool initializer did not run?)"
            )
        runtime = _WorkerRuntime(pickle.loads(blob))
        _BUILT_RUNTIMES[key] = runtime
    return runtime


def _known_identifiers_task(
    key: str, task_index: int, password_payloads: Tuple[dict, ...]
) -> Tuple[int, OfflineAttackResult, int, float]:
    """Worker: known-identifier attack on one contiguous run of targets.

    Returns ``(task_index, result, pid, busy_seconds)`` — the index drives
    the parent's deterministic merge, the pid/seconds feed the straggler
    telemetry.
    """
    started = time.perf_counter()
    runtime = _runtime(key)
    passwords = [PasswordSample.from_json(payload) for payload in password_payloads]
    result = offline_attack_known_identifiers(
        runtime.scheme,
        passwords,
        runtime.dictionary,
        count_entries=runtime.payload.count_entries,
    )
    return task_index, result, os.getpid(), time.perf_counter() - started


def _stolen_file_task(
    key: str,
    task_index: int,
    record_payloads: Tuple[Tuple[str, dict], ...],
    start_rank: int,
    stop_rank: int,
    pepper: bytes,
) -> Tuple[int, Tuple[Tuple[str, Optional[int], int], ...], int, float]:
    """Worker: grind a run of stolen records over one guess-rank window.

    Returns ``(task_index, rows, pid, busy_seconds)`` where each row is
    ``(username, first_matching_global_rank_or_None, guesses_hashed)``
    for ranks in ``[start_rank, stop_rank)`` — exactly the quantities the
    parent needs to reassemble the serial outcome bit for bit.
    """
    started = time.perf_counter()
    runtime = _runtime(key)
    rows = []
    for username, payload in record_payloads:
        stored = StoredPassword.from_json(payload)
        rank, hashed = _grind_account(
            runtime.kernel, stored, runtime.guesses, start_rank, stop_rank, pepper
        )
        rows.append((username, rank, hashed))
    return task_index, tuple(rows), os.getpid(), time.perf_counter() - started


@dataclass(frozen=True)
class AttackRunStats:
    """Telemetry for one parallel attack run (results stay untouched).

    Exposed via :attr:`ShardedAttackRunner.last_stats` so benchmarks can
    report scheduling quality without perturbing the deterministic attack
    results themselves.

    Attributes
    ----------
    mode:
        ``"serial"``, ``"static"`` or ``"queue"`` — what actually ran
        (small workloads collapse to serial regardless of configuration).
    workers:
        Worker processes used (1 for serial).
    tasks:
        Queue tasks dispatched (1 for serial).
    task_size:
        Targets per task (the largest shard, for static mode).
    waves:
        Guess-window waves executed (1 unless the stolen-file grind
        split its budget into rank windows).
    worker_busy:
        Seconds each worker pid spent inside task bodies.
    """

    mode: str
    workers: int
    tasks: int
    task_size: int
    waves: int
    worker_busy: Mapping[int, float] = field(default_factory=dict)

    @property
    def straggler_ratio(self) -> float:
        """Max/mean worker busy time: 1.0 is perfect balance.

        A static shard run whose one unlucky worker ground full-budget
        accounts while the rest early-stopped shows up here as a ratio
        near the worker count; the queue mode's whole purpose is to push
        this back toward 1.
        """
        busy = list(self.worker_busy.values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        if mean <= 0.0:
            return 1.0
        return max(busy) / mean


def merge_offline_results(
    shards: Sequence[OfflineAttackResult],
) -> OfflineAttackResult:
    """Merge per-task known-identifier results deterministically.

    Outcomes are concatenated in task-index order — tasks are contiguous
    runs of the target list, so this reproduces the serial dataset order —
    and the modeled hash counters are summed.
    """
    if not shards:
        raise AttackError("no shard results to merge")
    first = shards[0]
    return OfflineAttackResult(
        scheme_name=first.scheme_name,
        image_name=first.image_name,
        outcomes=tuple(
            outcome for shard in shards for outcome in shard.outcomes
        ),
        dictionary_bits=first.dictionary_bits,
        hash_operations_modeled=sum(s.hash_operations_modeled for s in shards),
    )


def merge_stolen_results(
    shards: Sequence[StolenFileAttackResult],
) -> StolenFileAttackResult:
    """Merge per-task stolen-file results deterministically.

    Tasks are contiguous runs of the sorted username list, so task-order
    concatenation reproduces the serial (sorted) account order;
    ``hash_operations`` is a derived sum and needs no merging.
    """
    if not shards:
        raise AttackError("no shard results to merge")
    first = shards[0]
    return StolenFileAttackResult(
        scheme_name=first.scheme_name,
        guess_budget=first.guess_budget,
        outcomes=tuple(
            outcome for shard in shards for outcome in shard.outcomes
        ),
    )


@dataclass(frozen=True)
class ShardedAttackRunner:
    """Offline attacks spread across worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` (the default) resolves to
        :func:`default_workers`.  With an effective count of 1 — or a
        workload smaller than the worker count collapsing to 1 task —
        the serial attack function is called directly in-process, making
        ``workers=1`` bit-identical to the serial path by construction.
    mode:
        ``"queue"`` (default): many small tasks through the executor's
        shared queue, pulled by idle workers — robust to skewed
        per-target cost (early-stopped accounts).  ``"static"``: one
        contiguous shard per worker, the pre-queue behavior — marginally
        less dispatch overhead when per-target cost is uniform.
    task_size:
        Targets per queue task; ``None`` auto-sizes via
        :func:`auto_task_size` (~8 tasks per worker).  Ignored in static
        mode.
    registry:
        Telemetry sink: every ``run_*`` call folds its
        :class:`AttackRunStats` into ``attack_*`` metrics there (run
        counters by mode, task/wave totals, worker-busy histogram,
        straggler-ratio gauge).  ``None`` uses the process default
        registry; a disabled registry skips publication entirely.

    Every mode/size/worker combination produces bit-identical results;
    only wall-clock and the :attr:`last_stats` telemetry differ.

    The worker pool is created on the first parallel call and reused by
    later calls **with the same run payload** (scheme, dictionary, guess
    budget — the defense-matrix sweep's 17 cells share one pool); a
    payload change rebuilds the pool so the initializer can stage the new
    payload.  Use the runner as a context manager, or call :meth:`close`,
    to tear it down deterministically.

    >>> runner = ShardedAttackRunner(workers=1)
    >>> runner.effective_workers
    1
    """

    workers: Optional[int] = None
    mode: str = "queue"
    task_size: Optional[int] = None
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise AttackError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in ("static", "queue"):
            raise AttackError(
                f"mode must be 'static' or 'queue', got {self.mode!r}"
            )
        if self.task_size is not None and self.task_size < 1:
            raise AttackError(f"task_size must be >= 1, got {self.task_size}")

    @property
    def effective_workers(self) -> int:
        """The resolved worker count (CPU-aware when ``workers`` is None)."""
        return self.workers if self.workers is not None else default_workers()

    @property
    def last_stats(self) -> Optional[AttackRunStats]:
        """Scheduling telemetry from the most recent ``run_*`` call.

        ``None`` before the first call.  Purely observational — the
        attack results themselves are identical across modes.
        """
        return self.__dict__.get("_last_stats")

    def _publish_stats(self, stats: AttackRunStats) -> None:
        """Stash *stats* as :attr:`last_stats` and fold it into metrics.

        Publishes to the runner's registry (or the process default) under
        the ``attack_*`` vocabulary: ``attack_runs_total{mode=...}``,
        ``attack_tasks_total`` / ``attack_waves_total`` counters, the
        ``attack_worker_busy_seconds`` histogram (one observation per
        worker pid) and ``attack_workers`` / ``attack_task_size`` /
        ``attack_straggler_ratio`` gauges describing the latest run.  A
        disabled registry makes this a stash-only no-op.
        """
        self.__dict__["_last_stats"] = stats
        registry = self.registry if self.registry is not None else get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "attack_runs_total",
            help="parallel attack runs by executed mode",
            mode=stats.mode,
        ).inc()
        registry.counter(
            "attack_tasks_total", help="attack tasks dispatched"
        ).inc(stats.tasks)
        registry.counter(
            "attack_waves_total", help="guess-window waves executed"
        ).inc(stats.waves)
        registry.gauge(
            "attack_workers", help="workers used by the latest attack run"
        ).set(stats.workers)
        registry.gauge(
            "attack_task_size", help="targets per task in the latest run"
        ).set(stats.task_size)
        registry.gauge(
            "attack_straggler_ratio",
            help="max/mean worker busy seconds of the latest run",
        ).set(stats.straggler_ratio)
        busy = registry.histogram(
            "attack_worker_busy_seconds",
            help="seconds each worker spent inside task bodies",
        )
        for seconds in stats.worker_busy.values():
            busy.observe(seconds)

    # -- attacks -----------------------------------------------------------

    def run_known_identifiers(
        self,
        scheme: DiscretizationScheme,
        passwords: Sequence[PasswordSample],
        dictionary: HumanSeededDictionary,
        count_entries: bool = True,
    ) -> OfflineAttackResult:
        """Parallel :func:`~repro.attacks.offline.offline_attack_known_identifiers`.

        Identical inputs produce identical results at every worker count —
        which is also why ``RANDOM_SAFE`` Robust schemes are rejected here
        *regardless* of worker count (their rng-driven enrollment cannot be
        replayed across shards; accepting them only when the task count
        happens to collapse to 1 would make success host-dependent).  Use
        the serial :func:`~repro.attacks.offline.offline_attack_known_identifiers`
        directly for RANDOM_SAFE ablations.
        """
        self._reject_random_safe(scheme)
        passwords = list(passwords)
        _validate_known_identifier_targets(scheme, passwords, dictionary)
        workers = min(self.effective_workers, len(passwords))
        if workers <= 1:
            started = time.perf_counter()
            result = offline_attack_known_identifiers(
                scheme, passwords, dictionary, count_entries=count_entries
            )
            self._record_serial_stats(len(passwords), started)
            return result
        payload = _RunPayload(
            scheme_spec=SchemeSpec.from_scheme(scheme),
            dictionary_spec=DictionarySpec.from_dictionary(dictionary),
            count_entries=count_entries,
        )
        if self.mode == "static":
            chunks = partition_evenly(passwords, workers)
        else:
            size = self.task_size or auto_task_size(len(passwords), workers)
            chunks = [
                passwords[start : start + size]
                for start in range(0, len(passwords), size)
            ]
        calls = [
            (index, tuple(password.to_json() for password in chunk))
            for index, chunk in enumerate(chunks)
        ]
        busy: Dict[int, float] = {}
        results = self._run_tasks(payload, _known_identifiers_task, calls, busy)
        self._publish_stats(
            AttackRunStats(
                mode=self.mode,
                workers=workers,
                tasks=len(calls),
                task_size=max(len(chunk) for chunk in chunks),
                waves=1,
                worker_busy=busy,
            )
        )
        return merge_offline_results([result for _, result in results])

    def run_stolen_file(
        self,
        scheme: DiscretizationScheme,
        stolen: Union[str, Mapping[str, StoredPassword]],
        dictionary: HumanSeededDictionary,
        guess_budget: int = 1000,
        pepper: bytes = b"",
    ) -> StolenFileAttackResult:
        """Parallel :func:`~repro.attacks.offline.offline_attack_stolen_file`.

        Tasks are contiguous runs of the sorted username list — the serial
        iteration order — optionally crossed with guess-rank windows when
        accounts are scarce (see :func:`_plan_guess_windows`).  A stolen
        account's serial outcome is fully determined by the first matching
        global guess rank, so reassembling ``first match at rank r →
        guesses_hashed = r + 1`` from per-window partial grinds is
        bit-identical to the serial early-stop at any task split.  The
        grind never enrolls, so even ``RANDOM_SAFE`` Robust schemes run
        fine (``locate`` is selection-independent).  *pepper* (a
        compromised server secret, if any) is forwarded verbatim to every
        task.
        """
        records = (
            parse_password_file(stolen) if isinstance(stolen, str) else dict(stolen)
        )
        _validate_stolen_records(records, dictionary, guess_budget)
        usernames = sorted(records)
        workers = min(self.effective_workers, len(usernames))
        if workers <= 1:
            started = time.perf_counter()
            result = offline_attack_stolen_file(
                scheme, records, dictionary, guess_budget=guess_budget, pepper=pepper
            )
            self._record_serial_stats(len(usernames), started)
            return result
        payload = _RunPayload(
            scheme_spec=SchemeSpec.from_scheme(scheme, for_enrollment=False),
            dictionary_spec=DictionarySpec.from_dictionary(dictionary),
            guess_budget=guess_budget,
        )
        if self.mode == "static":
            task_size = math.ceil(len(usernames) / workers)
            windows = [(0, guess_budget)]
        else:
            task_size = self.task_size or auto_task_size(len(usernames), workers)
            account_tasks = math.ceil(len(usernames) / task_size)
            windows = _plan_guess_windows(guess_budget, account_tasks, workers)

        hashed_by_user = {username: 0 for username in usernames}
        rank_by_user: Dict[str, int] = {}
        pending = usernames
        busy: Dict[int, float] = {}
        total_tasks = 0
        waves_run = 0
        for start_rank, stop_rank in windows:
            if not pending:
                break  # every account cracked — skip the remaining waves
            waves_run += 1
            if self.mode == "static":
                chunks = partition_evenly(pending, min(workers, len(pending)))
            else:
                chunks = [
                    pending[start : start + task_size]
                    for start in range(0, len(pending), task_size)
                ]
            calls = [
                (
                    index,
                    tuple(
                        (username, records[username].to_json())
                        for username in chunk
                    ),
                    start_rank,
                    stop_rank,
                    pepper,
                )
                for index, chunk in enumerate(chunks)
            ]
            total_tasks += len(calls)
            for _, rows in self._run_tasks(
                payload, _stolen_file_task, calls, busy
            ):
                for username, rank, hashed in rows:
                    hashed_by_user[username] += hashed
                    if rank is not None:
                        rank_by_user[username] = rank
            pending = [
                username for username in pending if username not in rank_by_user
            ]
        self._publish_stats(
            AttackRunStats(
                mode=self.mode,
                workers=workers,
                tasks=total_tasks,
                task_size=task_size,
                waves=waves_run,
                worker_busy=busy,
            )
        )
        outcomes = tuple(
            StolenAccountOutcome(
                username=username,
                cracked=username in rank_by_user,
                guesses_hashed=hashed_by_user[username],
                hash_units=hashed_by_user[username]
                * records[username].record.hasher.iterations,
            )
            for username in usernames
        )
        return StolenFileAttackResult(
            scheme_name=scheme.name,
            guess_budget=guess_budget,
            outcomes=outcomes,
        )

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _reject_random_safe(scheme: DiscretizationScheme) -> None:
        """Reject rng-driven enrollment consistently, at every worker count."""
        from repro.core.robust import GridSelection, RobustDiscretization

        if (
            isinstance(scheme, RobustDiscretization)
            and scheme.selection is GridSelection.RANDOM_SAFE
        ):
            raise AttackError(
                "cannot shard a RANDOM_SAFE robust scheme: its rng is "
                "process-local state and cannot be replayed deterministically "
                "across workers (use the serial attack for RANDOM_SAFE)"
            )

    def _record_serial_stats(self, targets: int, started: float) -> None:
        """Publish :class:`AttackRunStats` for an in-process serial run."""
        self._publish_stats(
            AttackRunStats(
                mode="serial",
                workers=1,
                tasks=1,
                task_size=targets,
                waves=1,
                worker_busy={os.getpid(): time.perf_counter() - started},
            )
        )

    def _pool_for(self, payload: _RunPayload) -> Tuple[ProcessPoolExecutor, str]:
        """The reusable pool whose workers have *payload* staged.

        The pool is keyed by the payload's hash (stashed in ``__dict__``
        of the frozen dataclass, the ``seed_array`` cache idiom): calls
        with the same scheme/dictionary/budget reuse both the processes
        and every worker-side cached runtime, so experiment sweeps pay
        startup and guess-batch precompute once.  A different payload
        tears the pool down and spawns a fresh one, because the payload
        travels via the pool *initializer* — the one channel that runs
        exactly once per worker regardless of start method.
        """
        blob = pickle.dumps(payload)
        key = hashlib.sha256(blob).hexdigest()
        pool = self.__dict__.get("_pool")
        if pool is not None and self.__dict__.get("_pool_key") == key:
            return pool, key
        self.close()
        pool = ProcessPoolExecutor(
            max_workers=self.effective_workers,
            initializer=_install_run_payload,
            initargs=(key, blob),
        )
        self.__dict__["_pool"] = pool
        self.__dict__["_pool_key"] = key
        return pool, key

    def _run_tasks(self, payload, task_fn, calls, busy):
        """Submit one future per call; gather in deterministic task order.

        Every worker return value is ``(task_index, data, pid, seconds)``;
        results are sorted by task index before the merge (futures may
        complete in any order — that is the whole point of the queue) and
        per-pid busy seconds are accumulated into *busy*.  Worker
        exceptions re-raise in the caller as :class:`AttackError`, so a
        dying worker (or a broken pool) fails the whole attack immediately
        rather than hanging the merge; a broken pool is discarded so the
        next call starts fresh.
        """
        pool, key = self._pool_for(payload)
        try:
            futures = [pool.submit(task_fn, key, *args) for args in calls]
            results = [future.result() for future in futures]
        except AttackError:
            raise
        except Exception as exc:
            if isinstance(exc, BrokenExecutor):
                self.close()
            raise AttackError(f"parallel attack worker failed: {exc}") from exc
        results.sort(key=lambda item: item[0])
        for _, _, pid, seconds in results:
            busy[pid] = busy.get(pid, 0.0) + seconds
        return [(index, data) for index, data, _, _ in results]

    def close(self) -> None:
        """Shut down the reused worker pool (safe to call repeatedly).

        Without an explicit close the pool is torn down when the runner is
        garbage-collected; ``with ShardedAttackRunner(...) as runner:``
        scopes it deterministically.
        """
        pool = self.__dict__.pop("_pool", None)
        self.__dict__.pop("_pool_key", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedAttackRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
