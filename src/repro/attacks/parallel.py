"""Process-sharded parallel attack engine (ROADMAP: multiprocessing shards).

The offline attacks of §5.1 are embarrassingly parallel: every target
password (known-identifier attack) and every stolen record (password-file
grind) is decided independently of the others.  This module shards those
workloads across ``concurrent.futures.ProcessPoolExecutor`` workers and
merges the per-shard results deterministically, so scaling out never
changes a single bit of the answer:

* the target list is partitioned **contiguously in dataset order**
  (:func:`partition_evenly`), each worker runs the ordinary serial attack
  (:func:`~repro.attacks.offline.offline_attack_known_identifiers` /
  :func:`~repro.attacks.offline.offline_attack_stolen_file`) on its shard,
  and the merge concatenates outcomes in shard order — i.e. exactly the
  serial iteration order — while summing the aggregate hash counters;
* ``workers=1`` bypasses the pool entirely and calls the serial function,
  so it is bit-identical to the serial path by construction, and any
  ``workers`` produces the identical result by the merge argument above
  (property-tested in ``tests/test_attacks_parallel.py``).

Workers never receive live kernels, schemes or numpy arrays.  Each worker
rebuilds its scheme, batch kernel and dictionary from a small picklable
spec (:class:`SchemeSpec`, :class:`DictionarySpec`) holding only primitive
JSON-encoded parameters — the same codec the password file itself uses —
which keeps the pickled task payload tiny and start-method agnostic
(fork and spawn both work).

Worker failures are surfaced eagerly: any exception raised in a worker
(or a broken pool) is re-raised in the caller as
:class:`~repro.errors.AttackError` instead of hanging the merge.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple, TypeVar, Union

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import (
    OfflineAttackResult,
    StolenFileAttackResult,
    _validate_known_identifier_targets,
    _validate_stolen_records,
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
)
from repro.core.scheme import DiscretizationScheme
from repro.crypto.encoding import scalar_from_json, scalar_to_json
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.passwords.system import StoredPassword
from repro.study.dataset import PasswordSample

__all__ = [
    "DictionarySpec",
    "SchemeSpec",
    "ShardedAttackRunner",
    "default_workers",
    "merge_offline_results",
    "merge_stolen_results",
    "partition_evenly",
]

_Item = TypeVar("_Item")


def default_workers() -> int:
    """CPU-aware default worker count.

    The schedulable CPU count (``os.sched_getaffinity``) where available —
    a container pinned to 2 of 64 cores should default to 2 workers — and
    ``os.cpu_count()`` elsewhere; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without affinity support
        return max(1, os.cpu_count() or 1)


def partition_evenly(items: Sequence[_Item], shards: int) -> List[List[_Item]]:
    """Split *items* into *shards* contiguous, near-even, non-empty runs.

    The first ``len(items) % shards`` shards get one extra item.  Order is
    preserved, so concatenating the shards reproduces *items* exactly —
    the property the deterministic merge relies on.  *shards* must not
    exceed ``len(items)``.
    """
    if shards < 1:
        raise AttackError(f"shards must be >= 1, got {shards}")
    if shards > len(items):
        raise AttackError(
            f"cannot split {len(items)} item(s) into {shards} non-empty shards"
        )
    base, extra = divmod(len(items), shards)
    result: List[List[_Item]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        result.append(list(items[start : start + size]))
        start += size
    return result


@dataclass(frozen=True)
class SchemeSpec:
    """Picklable recipe for rebuilding a scheme inside a worker process.

    Holds only primitive values (scheme kind, dimension, JSON-encoded
    rational parameters) — never kernels, grids or numpy state — so the
    pickled payload is a few hundred bytes and works under any
    multiprocessing start method.

    Attributes
    ----------
    kind:
        ``"centered"``, ``"robust"`` or ``"static"``.
    dim:
        Scheme dimensionality.
    r:
        JSON-encoded exact tolerance (centered/robust); ``None`` for static.
    cell_size, offset:
        JSON-encoded static-grid geometry; ``None`` otherwise.
    selection:
        Robust grid-selection policy value; ``None`` otherwise.
    """

    kind: str
    dim: int
    r: Optional[object] = None
    cell_size: Optional[object] = None
    offset: Optional[object] = None
    selection: Optional[str] = None

    @classmethod
    def from_scheme(
        cls, scheme: DiscretizationScheme, for_enrollment: bool = True
    ) -> "SchemeSpec":
        """Describe *scheme* as primitives, or raise :class:`AttackError`.

        With *for_enrollment* (the default), ``RANDOM_SAFE`` Robust
        schemes are rejected: their rng is live process-local state, so
        sharded enrollment could neither transport nor deterministically
        replay it.  Locate-only workloads (the stolen-file grind never
        enrolls) pass ``for_enrollment=False``, which normalizes
        ``RANDOM_SAFE`` to ``MOST_CENTERED`` — ``locate`` is
        selection-independent, so the rebuilt scheme behaves identically.
        """
        from repro.core.centered import CenteredDiscretization
        from repro.core.robust import GridSelection, RobustDiscretization
        from repro.core.static import StaticGridScheme

        if isinstance(scheme, CenteredDiscretization):
            return cls(kind="centered", dim=scheme.dim, r=scalar_to_json(scheme.r))
        if isinstance(scheme, RobustDiscretization):
            selection = scheme.selection
            if selection is GridSelection.RANDOM_SAFE:
                if for_enrollment:
                    raise AttackError(
                        "cannot shard a RANDOM_SAFE robust scheme: its rng is "
                        "process-local state and cannot be replayed "
                        "deterministically across workers"
                    )
                selection = GridSelection.MOST_CENTERED
            return cls(
                kind="robust",
                dim=scheme.dim,
                r=scalar_to_json(scheme.r),
                selection=selection.value,
            )
        if isinstance(scheme, StaticGridScheme):
            return cls(
                kind="static",
                dim=scheme.dim,
                cell_size=scalar_to_json(scheme.cell_size),
                offset=scalar_to_json(scheme.grid.offsets[0]),
            )
        raise AttackError(
            f"cannot build a worker spec for scheme type {type(scheme).__name__}"
        )

    def build(self) -> DiscretizationScheme:
        """Rebuild the scheme (workers call this once per shard)."""
        from repro.core.centered import CenteredDiscretization
        from repro.core.robust import GridSelection, RobustDiscretization
        from repro.core.static import StaticGridScheme

        if self.kind == "centered":
            return CenteredDiscretization(self.dim, scalar_from_json(self.r))
        if self.kind == "robust":
            return RobustDiscretization(
                self.dim,
                scalar_from_json(self.r),
                selection=GridSelection(self.selection),
            )
        if self.kind == "static":
            return StaticGridScheme(
                self.dim,
                scalar_from_json(self.cell_size),
                offset=scalar_from_json(self.offset),
            )
        raise AttackError(f"unknown scheme spec kind {self.kind!r}")


@dataclass(frozen=True)
class DictionarySpec:
    """Picklable recipe for rebuilding the attack dictionary in a worker.

    Carries the seed pool as JSON-encoded coordinate tuples (exact through
    :func:`~repro.crypto.encoding.scalar_to_json`), not as
    :class:`~repro.geometry.point.Point` objects or the dictionary's cached
    numpy seed array — workers rebuild those themselves.
    """

    seed_points: Tuple[Tuple[object, ...], ...]
    tuple_length: int
    image_name: str

    @classmethod
    def from_dictionary(cls, dictionary: HumanSeededDictionary) -> "DictionarySpec":
        """Describe *dictionary* as primitives."""
        return cls(
            seed_points=tuple(
                tuple(scalar_to_json(coord) for coord in point)
                for point in dictionary.seed_points
            ),
            tuple_length=dictionary.tuple_length,
            image_name=dictionary.image_name,
        )

    def build(self) -> HumanSeededDictionary:
        """Rebuild the dictionary (workers call this once per shard)."""
        return HumanSeededDictionary(
            seed_points=tuple(
                Point.of(*(scalar_from_json(coord) for coord in coords))
                for coords in self.seed_points
            ),
            tuple_length=self.tuple_length,
            image_name=self.image_name,
        )


def merge_offline_results(
    shards: Sequence[OfflineAttackResult],
) -> OfflineAttackResult:
    """Merge per-shard known-identifier results deterministically.

    Outcomes are concatenated in shard order — shards are contiguous runs
    of the target list, so this reproduces the serial dataset order —
    and the modeled hash counters are summed.
    """
    if not shards:
        raise AttackError("no shard results to merge")
    first = shards[0]
    return OfflineAttackResult(
        scheme_name=first.scheme_name,
        image_name=first.image_name,
        outcomes=tuple(
            outcome for shard in shards for outcome in shard.outcomes
        ),
        dictionary_bits=first.dictionary_bits,
        hash_operations_modeled=sum(s.hash_operations_modeled for s in shards),
    )


def merge_stolen_results(
    shards: Sequence[StolenFileAttackResult],
) -> StolenFileAttackResult:
    """Merge per-shard stolen-file results deterministically.

    Shards are contiguous runs of the sorted username list, so shard-order
    concatenation reproduces the serial (sorted) account order;
    ``hash_operations`` is a derived sum and needs no merging.
    """
    if not shards:
        raise AttackError("no shard results to merge")
    first = shards[0]
    return StolenFileAttackResult(
        scheme_name=first.scheme_name,
        guess_budget=first.guess_budget,
        outcomes=tuple(
            outcome for shard in shards for outcome in shard.outcomes
        ),
    )


def _known_identifiers_shard(
    scheme_spec: SchemeSpec,
    dictionary_spec: DictionarySpec,
    password_payloads: Tuple[dict, ...],
    count_entries: bool,
) -> OfflineAttackResult:
    """Worker: serial known-identifier attack on one contiguous shard."""
    scheme = scheme_spec.build()
    dictionary = dictionary_spec.build()
    passwords = [PasswordSample.from_json(payload) for payload in password_payloads]
    return offline_attack_known_identifiers(
        scheme, passwords, dictionary, count_entries=count_entries
    )


def _stolen_file_shard(
    scheme_spec: SchemeSpec,
    dictionary_spec: DictionarySpec,
    record_payloads: Tuple[Tuple[str, dict], ...],
    guess_budget: int,
    pepper: bytes,
) -> StolenFileAttackResult:
    """Worker: serial password-file grind on one contiguous shard."""
    scheme = scheme_spec.build()
    dictionary = dictionary_spec.build()
    records = {
        username: StoredPassword.from_json(payload)
        for username, payload in record_payloads
    }
    return offline_attack_stolen_file(
        scheme, records, dictionary, guess_budget=guess_budget, pepper=pepper
    )


@dataclass(frozen=True)
class ShardedAttackRunner:
    """Offline attacks sharded across worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` (the default) resolves to
        :func:`default_workers`.  With an effective count of 1 — or a
        workload smaller than the worker count collapsing to 1 shard —
        the serial attack function is called directly in-process, making
        ``workers=1`` bit-identical to the serial path by construction.

    The worker pool is created on the first parallel call and reused by
    later ones (experiment sweeps pay process startup once); use the
    runner as a context manager, or call :meth:`close`, to tear it down
    deterministically.

    >>> runner = ShardedAttackRunner(workers=1)
    >>> runner.effective_workers
    1
    """

    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise AttackError(f"workers must be >= 1, got {self.workers}")

    @property
    def effective_workers(self) -> int:
        """The resolved worker count (CPU-aware when ``workers`` is None)."""
        return self.workers if self.workers is not None else default_workers()

    # -- attacks -----------------------------------------------------------

    def run_known_identifiers(
        self,
        scheme: DiscretizationScheme,
        passwords: Sequence[PasswordSample],
        dictionary: HumanSeededDictionary,
        count_entries: bool = True,
    ) -> OfflineAttackResult:
        """Sharded :func:`~repro.attacks.offline.offline_attack_known_identifiers`.

        Identical inputs produce identical results at every worker count —
        which is also why ``RANDOM_SAFE`` Robust schemes are rejected here
        *regardless* of worker count (their rng-driven enrollment cannot be
        replayed across shards; accepting them only when the shard count
        happens to collapse to 1 would make success host-dependent).  Use
        the serial :func:`~repro.attacks.offline.offline_attack_known_identifiers`
        directly for RANDOM_SAFE ablations.
        """
        self._reject_random_safe(scheme)
        passwords = list(passwords)
        _validate_known_identifier_targets(scheme, passwords, dictionary)
        shard_count = min(self.effective_workers, len(passwords))
        if shard_count <= 1:
            return offline_attack_known_identifiers(
                scheme, passwords, dictionary, count_entries=count_entries
            )
        scheme_spec = SchemeSpec.from_scheme(scheme)
        dictionary_spec = DictionarySpec.from_dictionary(dictionary)
        tasks = [
            (
                scheme_spec,
                dictionary_spec,
                tuple(password.to_json() for password in shard),
                count_entries,
            )
            for shard in partition_evenly(passwords, shard_count)
        ]
        return merge_offline_results(self._map(_known_identifiers_shard, tasks))

    def run_stolen_file(
        self,
        scheme: DiscretizationScheme,
        stolen: Union[str, Mapping[str, StoredPassword]],
        dictionary: HumanSeededDictionary,
        guess_budget: int = 1000,
        pepper: bytes = b"",
    ) -> StolenFileAttackResult:
        """Sharded :func:`~repro.attacks.offline.offline_attack_stolen_file`.

        The stolen-record map is partitioned over its sorted usernames —
        the serial iteration order — so the merged outcome tuple matches
        the serial result exactly at any worker count.  The grind never
        enrolls, so even ``RANDOM_SAFE`` Robust schemes shard fine
        (``locate`` is selection-independent).  *pepper* (a compromised
        server secret, if any) is forwarded verbatim to every shard.
        """
        records = (
            parse_password_file(stolen) if isinstance(stolen, str) else dict(stolen)
        )
        _validate_stolen_records(records, dictionary, guess_budget)
        usernames = sorted(records)
        shard_count = min(self.effective_workers, len(usernames))
        if shard_count <= 1:
            return offline_attack_stolen_file(
                scheme, records, dictionary, guess_budget=guess_budget, pepper=pepper
            )
        scheme_spec = SchemeSpec.from_scheme(scheme, for_enrollment=False)
        dictionary_spec = DictionarySpec.from_dictionary(dictionary)
        tasks = [
            (
                scheme_spec,
                dictionary_spec,
                tuple((username, records[username].to_json()) for username in shard),
                guess_budget,
                pepper,
            )
            for shard in partition_evenly(usernames, shard_count)
        ]
        return merge_stolen_results(self._map(_stolen_file_shard, tasks))

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _reject_random_safe(scheme: DiscretizationScheme) -> None:
        """Reject rng-driven enrollment consistently, at every worker count."""
        from repro.core.robust import GridSelection, RobustDiscretization

        if (
            isinstance(scheme, RobustDiscretization)
            and scheme.selection is GridSelection.RANDOM_SAFE
        ):
            raise AttackError(
                "cannot shard a RANDOM_SAFE robust scheme: its rng is "
                "process-local state and cannot be replayed deterministically "
                "across workers (use the serial attack for RANDOM_SAFE)"
            )

    def _map(self, worker, tasks):
        """Run one worker task per shard; re-raise failures as AttackError.

        The pool is created lazily and reused across ``run_*`` calls (the
        :class:`HumanSeededDictionary.seed_array` cache idiom: stashed in
        ``__dict__`` of the frozen dataclass), so experiment sweeps making
        many attack calls pay worker startup once, not per call.  A broken
        pool is discarded so the next call starts fresh.

        ``future.result()`` re-raises worker exceptions in the caller, so a
        dying worker (or a broken pool) fails the whole attack immediately
        rather than hanging the merge.
        """
        pool = self.__dict__.get("_pool")
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=self.effective_workers)
            self.__dict__["_pool"] = pool
        try:
            futures = [pool.submit(worker, *task) for task in tasks]
            return [future.result() for future in futures]
        except AttackError:
            raise
        except Exception as exc:
            if isinstance(exc, BrokenExecutor):
                self.close()
            raise AttackError(f"parallel attack worker failed: {exc}") from exc

    def close(self) -> None:
        """Shut down the reused worker pool (safe to call repeatedly).

        Without an explicit close the pool is torn down when the runner is
        garbage-collected; ``with ShardedAttackRunner(...) as runner:``
        scopes it deterministically.
        """
        pool = self.__dict__.pop("_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedAttackRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
