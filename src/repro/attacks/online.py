"""Online dictionary attacks against the live login interface (paper §5.1).

"Alternatively, attackers without access to the password file may attempt an
online attack.  While attackers may not explicitly know the grid
identifiers, these are not necessary since the system will automatically use
the correct grids when interpreting the login attempt. … The system may
limit the number of incorrect login attempts for individual accounts,
slowing or stopping the attack."

The attacker submits dictionary entries — best-first by seed-point
popularity — through the normal login flow until the account succumbs, the
guess budget runs out, or the throttle locks the account.  Smaller grid
squares force guesses closer to the real click-points, so at equal r the
attack does markedly worse against Centered Discretization (same
phenomenon as the offline Figure-8 gap, with the lockout cap on top).

Deployment countermeasures (:class:`~repro.passwords.defense.DefenseConfig`)
are modelled as **attacker throughput penalties**, accounted in simulated
seconds per account:

* every evaluated attempt costs ``attempt_seconds`` (network round-trip plus
  the server's hash; a ``hash_cost_factor`` deployment makes the server-side
  share k× larger, but the round-trip usually dominates online);
* a **rate limit** refusal costs the ``retry_after`` wait before the same
  guess is retried — the attacker loses wall-clock, not budget;
* a **CAPTCHA** challenge either stops the automated attacker cold
  (``captcha_solve_seconds=None`` → the account is *captcha-walled*) or
  costs the human-solver price per challenged attempt;
* **lockout** ends the account's attack exactly as before.

Rate-limited stores must carry an advanceable clock
(:class:`~repro.passwords.defense.VirtualClock`) so the simulation can wait
without sleeping; attacking a rate-limited store on a real monotonic clock
is rejected eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import AttackError, LockoutError, RateLimitError
from repro.passwords.store import PasswordStore
from repro.attacks.dictionary import HumanSeededDictionary

__all__ = ["AccountOutcome", "OnlineAttackResult", "online_attack"]


@dataclass(frozen=True, slots=True)
class AccountOutcome:
    """Outcome of attacking one account online.

    ``attacker_seconds`` is the simulated wall-clock the attacker spent on
    this account (attempt round-trips + rate-limit waits + CAPTCHA solves);
    ``captcha_walled`` marks accounts abandoned at a CAPTCHA challenge the
    attacker could not solve.
    """

    username: str
    compromised: bool
    guesses_used: int
    locked_out: bool
    attacker_seconds: float = 0.0
    captcha_walled: bool = False


@dataclass(frozen=True)
class OnlineAttackResult:
    """Aggregate online-attack result.

    ``guess_budget`` is the per-account cap the attacker planned for;
    throttling may stop them earlier.
    """

    guess_budget: int
    outcomes: Tuple[AccountOutcome, ...]

    @property
    def compromised(self) -> int:
        """Number of accounts taken over."""
        return sum(1 for o in self.outcomes if o.compromised)

    @property
    def compromised_fraction(self) -> float:
        """Fraction of attacked accounts compromised."""
        if not self.outcomes:
            return 0.0
        return self.compromised / len(self.outcomes)

    @property
    def locked_fraction(self) -> float:
        """Fraction of accounts driven into lockout (noisy attacks)."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.locked_out) / len(self.outcomes)

    @property
    def captcha_walled_fraction(self) -> float:
        """Fraction of accounts abandoned at an unsolvable CAPTCHA."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.captcha_walled) / len(
            self.outcomes
        )

    @property
    def total_guesses(self) -> int:
        """Total login attempts the attacker spent."""
        return sum(o.guesses_used for o in self.outcomes)

    @property
    def attacker_seconds(self) -> float:
        """Total simulated attacker wall-clock across all accounts."""
        return sum(o.attacker_seconds for o in self.outcomes)

    @property
    def seconds_per_compromise(self) -> float:
        """Attacker cost per cracked account, in simulated seconds.

        ``inf`` when nothing was compromised — the defense priced the
        attack out entirely.
        """
        compromised = self.compromised
        if compromised == 0:
            return float("inf")
        return self.attacker_seconds / compromised


def online_attack(
    store: PasswordStore,
    dictionary: HumanSeededDictionary,
    usernames: Sequence[str] | None = None,
    guess_budget: int = 100,
    attempt_seconds: float = 1.0,
    captcha_solve_seconds: Optional[float] = None,
) -> OnlineAttackResult:
    """Attack accounts through the live, throttled login interface.

    Parameters
    ----------
    store:
        The deployed service (its lockout policy *and*
        :class:`~repro.passwords.defense.DefenseConfig` are all active —
        the attacker faces exactly the defender's rules).
    dictionary:
        Seed dictionary; entries are tried best-first by popularity.
    usernames:
        Accounts to attack (default: all accounts in the store).
    guess_budget:
        Maximum login attempts per account the attacker is willing to spend
        (rate limits make online guesses expensive).
    attempt_seconds:
        Simulated cost of one evaluated login attempt.
    captcha_solve_seconds:
        Price of solving one CAPTCHA challenge (e.g. a human-solver
        service).  ``None`` (default) models a purely automated attacker:
        the first challenge walls the account off.
    """
    if guess_budget < 1:
        raise AttackError(f"guess_budget must be >= 1, got {guess_budget}")
    if attempt_seconds < 0:
        raise AttackError(f"attempt_seconds must be >= 0, got {attempt_seconds}")
    targets = tuple(usernames) if usernames is not None else store.usernames
    if not targets:
        raise AttackError("no accounts to attack")
    defense = getattr(store, "defense", None)
    advance = getattr(store.clock, "advance", None) if defense is not None else None
    if defense is not None and defense.rate_limited and advance is None:
        raise AttackError(
            "online attack against a rate-limited store needs an advanceable "
            "store clock (PasswordStore(clock=VirtualClock())) so waits can "
            "be simulated instead of slept"
        )

    # The guess sequence is identical for every account (the attacker has
    # one dictionary), so materialize it once.
    guesses = list(dictionary.prioritized_entries(guess_budget))

    outcomes: List[AccountOutcome] = []
    for username in targets:
        used = 0
        seconds = 0.0
        compromised = False
        locked = False
        walled = False
        for guess in guesses:
            if defense is not None and store.captcha_required(username):
                if captcha_solve_seconds is None:
                    walled = True
                    break
                seconds += captcha_solve_seconds
            attempt = list(guess)
            while True:
                try:
                    used += 1
                    seconds += attempt_seconds
                    if store.login(username, attempt):
                        compromised = True
                    break
                except RateLimitError as refusal:
                    # Refused before evaluation: the guess is not spent,
                    # but the window wait is.
                    used -= 1
                    seconds += refusal.retry_after - attempt_seconds
                    advance(refusal.retry_after)
                except LockoutError:
                    used -= 1  # the refused attempt never executed
                    seconds -= attempt_seconds
                    locked = True
                    break
            if compromised or locked:
                break
        if not locked and not compromised:
            locked = store.is_locked(username)
        outcomes.append(
            AccountOutcome(
                username=username,
                compromised=compromised,
                guesses_used=used,
                locked_out=locked,
                attacker_seconds=seconds,
                captcha_walled=walled,
            )
        )
    return OnlineAttackResult(guess_budget=guess_budget, outcomes=tuple(outcomes))
