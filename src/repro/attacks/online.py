"""Online dictionary attacks against the live login interface (paper §5.1).

"Alternatively, attackers without access to the password file may attempt an
online attack.  While attackers may not explicitly know the grid
identifiers, these are not necessary since the system will automatically use
the correct grids when interpreting the login attempt. … The system may
limit the number of incorrect login attempts for individual accounts,
slowing or stopping the attack."

The attacker submits dictionary entries — best-first by seed-point
popularity — through the normal login flow until the account succumbs, the
guess budget runs out, or the throttle locks the account.  Smaller grid
squares force guesses closer to the real click-points, so at equal r the
attack does markedly worse against Centered Discretization (same phenomenon
as the offline Figure-8 gap, with the lockout cap on top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import AttackError, LockoutError
from repro.passwords.store import PasswordStore
from repro.attacks.dictionary import HumanSeededDictionary

__all__ = ["OnlineAttackResult", "online_attack"]


@dataclass(frozen=True, slots=True)
class AccountOutcome:
    """Outcome of attacking one account online."""

    username: str
    compromised: bool
    guesses_used: int
    locked_out: bool


@dataclass(frozen=True)
class OnlineAttackResult:
    """Aggregate online-attack result.

    ``guess_budget`` is the per-account cap the attacker planned for;
    throttling may stop them earlier.
    """

    guess_budget: int
    outcomes: Tuple[AccountOutcome, ...]

    @property
    def compromised(self) -> int:
        """Number of accounts taken over."""
        return sum(1 for o in self.outcomes if o.compromised)

    @property
    def compromised_fraction(self) -> float:
        """Fraction of attacked accounts compromised."""
        if not self.outcomes:
            return 0.0
        return self.compromised / len(self.outcomes)

    @property
    def locked_fraction(self) -> float:
        """Fraction of accounts driven into lockout (noisy attacks)."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.locked_out) / len(self.outcomes)

    @property
    def total_guesses(self) -> int:
        """Total login attempts the attacker spent."""
        return sum(o.guesses_used for o in self.outcomes)


def online_attack(
    store: PasswordStore,
    dictionary: HumanSeededDictionary,
    usernames: Sequence[str] | None = None,
    guess_budget: int = 100,
) -> OnlineAttackResult:
    """Attack accounts through the live, throttled login interface.

    Parameters
    ----------
    store:
        The deployed service (with its lockout policy active).
    dictionary:
        Seed dictionary; entries are tried best-first by popularity.
    usernames:
        Accounts to attack (default: all accounts in the store).
    guess_budget:
        Maximum login attempts per account the attacker is willing to spend
        (rate limits make online guesses expensive).
    """
    if guess_budget < 1:
        raise AttackError(f"guess_budget must be >= 1, got {guess_budget}")
    targets = tuple(usernames) if usernames is not None else store.usernames
    if not targets:
        raise AttackError("no accounts to attack")

    # The guess sequence is identical for every account (the attacker has
    # one dictionary), so materialize it once.
    guesses = list(dictionary.prioritized_entries(guess_budget))

    outcomes: List[AccountOutcome] = []
    for username in targets:
        used = 0
        compromised = False
        locked = False
        for guess in guesses:
            try:
                used += 1
                if store.login(username, list(guess)):
                    compromised = True
                    break
            except LockoutError:
                used -= 1  # the refused attempt never executed
                locked = True
                break
        if not locked and not compromised:
            locked = store.is_locked(username)
        outcomes.append(
            AccountOutcome(
                username=username,
                compromised=compromised,
                guesses_used=used,
                locked_out=locked,
            )
        )
    return OnlineAttackResult(guess_budget=guess_budget, outcomes=tuple(outcomes))
