"""Attack economics: what cracking actually costs, in hashes and hours.

Turns the paper's security comparisons into operational numbers:

* **expected guesses to first success** — with ``m`` matching entries
  uniformly placed in a dictionary of ``N``, a random-order enumeration
  expects ``(N + 1) / (m + 1)`` guesses before the first hit;
* **hash budget** for a full offline enumeration, with and without known
  grid identifiers (the §5.1 work-factor analysis), scaled by the record's
  iteration count (§3.2's h^1000 hardening);
* **wall-clock estimates** for a given attacker hash rate.

These close the loop between the paper's bit-counting arguments and the
concrete question a deployer asks: "how long does a stolen password file
survive?"

The **defense matrix** (:func:`defense_matrix_sweep`, CLI ``repro
defense-matrix``) extends the loop to deployment countermeasures: every
:class:`~repro.passwords.defense.DefenseConfig` cell is run against both
the online attack (live, throttled interface) and the stolen-file grind,
and the report prices each cell on two axes — attacker cost per cracked
account, defender verification-throughput cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # annotation-only: avoids importing the pool machinery
    from repro.attacks.parallel import ShardedAttackRunner

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import (
    OfflineAttackResult,
    hash_only_work_factor,
    offline_attack_stolen_file,
)
from repro.attacks.online import online_attack
from repro.core.scheme import DiscretizationScheme
from repro.crypto.hashing import Hasher
from repro.errors import AttackError, RateLimitError
from repro.geometry.point import Point
from repro.passwords.defense import DefenseConfig, VirtualClock
from repro.passwords.policy import LockoutPolicy
from repro.passwords.store import PasswordStore

__all__ = [
    "expected_guesses_to_crack",
    "CrackingCostEstimate",
    "offline_cracking_cost",
    "summarize_attack_economics",
    "DefenseCell",
    "DEFENSE_MATRIX_PEPPER",
    "default_defense_cells",
    "defense_matrix_sweep",
    "render_defense_matrix",
]

#: A mid-range GPU's SHA-256 throughput, order of magnitude (hashes/second).
DEFAULT_HASH_RATE = 1e9


def expected_guesses_to_crack(
    matching_entries: int, dictionary_size: int
) -> Optional[float]:
    """Expected random-order guesses until the first matching entry.

    ``(N + 1) / (m + 1)`` for m matching entries among N; ``None`` when no
    entry matches (the dictionary cannot crack this password).
    """
    if dictionary_size < 1:
        raise AttackError(f"dictionary_size must be >= 1, got {dictionary_size}")
    if matching_entries < 0 or matching_entries > dictionary_size:
        raise AttackError(
            f"matching_entries {matching_entries} out of range for "
            f"dictionary of {dictionary_size}"
        )
    if matching_entries == 0:
        return None
    return (dictionary_size + 1) / (matching_entries + 1)


@dataclass(frozen=True, slots=True)
class CrackingCostEstimate:
    """Hash and time budget for one offline attack configuration."""

    scheme_name: str
    dictionary_entries: int
    identifier_multiplier: float
    hash_iterations: int
    hash_rate: float

    @property
    def hashes_per_password(self) -> float:
        """Worst-case hash invocations to exhaust the dictionary."""
        return (
            self.dictionary_entries
            * self.identifier_multiplier
            * self.hash_iterations
        )

    @property
    def seconds_per_password(self) -> float:
        """Worst-case wall-clock seconds per password at the hash rate."""
        return self.hashes_per_password / self.hash_rate

    @property
    def hours_per_password(self) -> float:
        """Worst-case wall-clock hours per password."""
        return self.seconds_per_password / 3600.0


def offline_cracking_cost(
    scheme: DiscretizationScheme,
    dictionary: HumanSeededDictionary,
    hasher: Hasher = Hasher(),
    identifiers_known: bool = True,
    hash_rate: float = DEFAULT_HASH_RATE,
) -> CrackingCostEstimate:
    """Cost model for exhausting the dictionary against one password.

    With identifiers known every entry costs one (iterated) hash; without
    them the §5.1 multiplier applies — 3^clicks for Robust, ((2r)²)^clicks
    for Centered.
    """
    if hash_rate <= 0:
        raise AttackError(f"hash_rate must be > 0, got {hash_rate}")
    if identifiers_known:
        multiplier = 1.0
    else:
        multiplier = hash_only_work_factor(scheme, dictionary.tuple_length)[
            "multiplier"
        ]
    return CrackingCostEstimate(
        scheme_name=scheme.name,
        dictionary_entries=dictionary.entry_count,
        identifier_multiplier=multiplier,
        hash_iterations=hasher.iterations,
        hash_rate=hash_rate,
    )


def summarize_attack_economics(
    result: OfflineAttackResult,
    estimate: CrackingCostEstimate,
) -> dict:
    """Combine an attack outcome with its cost model.

    Returns crackable fraction, mean/median expected guesses for the
    crackable passwords, the wall-clock budget to fully process the
    attacked set, and the **per-cracked-account** attacker cost.

    Per-account cost is priced off
    :meth:`~repro.attacks.offline.OfflineAttackResult.expected_guess_rank`
    (``(N+1)/(m+1)`` expected guesses until the first hit), *not* the
    full-dictionary budget: an attacker stops at the first match, so
    billing each cracked account the whole enumeration
    (``hashes_per_password``) overstates the per-account price by orders
    of magnitude for popular passwords.
    """
    expectations = [
        result.expected_guess_rank(outcome)
        for outcome in result.outcomes
        if outcome.cracked and outcome.matching_entries > 0
    ]
    expectations.sort()
    mean_guesses = (
        sum(expectations) / len(expectations) if expectations else None
    )
    median_guesses = (
        expectations[len(expectations) // 2] if expectations else None
    )
    if mean_guesses is None:
        hashes_per_cracked = None
        hours_per_cracked = None
    else:
        hashes_per_cracked = (
            mean_guesses * estimate.identifier_multiplier * estimate.hash_iterations
        )
        hours_per_cracked = hashes_per_cracked / estimate.hash_rate / 3600.0
    return {
        "scheme": result.scheme_name,
        "image": result.image_name,
        "attacked": result.attacked,
        "cracked": result.cracked,
        "cracked_fraction": result.cracked_fraction,
        "mean_expected_guesses": mean_guesses,
        "median_expected_guesses": median_guesses,
        "hashes_per_password": estimate.hashes_per_password,
        "hours_per_password": estimate.hours_per_password,
        "hours_total": estimate.hours_per_password * result.attacked,
        "expected_hashes_per_cracked_account": hashes_per_cracked,
        "expected_hours_per_cracked_account": hours_per_cracked,
    }


# ---------------------------------------------------------------------------
# Defense/attack scenario matrix
# ---------------------------------------------------------------------------

#: The sweep's stand-in server secret (any non-empty bytes behave alike:
#: the stolen file fails closed without it).
DEFENSE_MATRIX_PEPPER = b"defense-matrix-pepper"


@dataclass(frozen=True)
class DefenseCell:
    """One named deployment configuration in the defense matrix."""

    name: str
    config: DefenseConfig


def default_defense_cells() -> Tuple[DefenseCell, ...]:
    """The standard sweep: every knob alone, plus representative combos.

    17 cells — the undefended baseline, three slow-hash tiers, pepper,
    two CAPTCHA thresholds, two rate-limit windows, two lockout caps,
    and five multi-knob deployments up to the kitchen sink.
    """
    pepper = DEFENSE_MATRIX_PEPPER
    strict_rl = {"rate_limit_window": 30.0, "rate_limit_max": 3}
    lenient_rl = {"rate_limit_window": 60.0, "rate_limit_max": 30}
    return (
        DefenseCell("none", DefenseConfig()),
        DefenseCell("hash_cost_4", DefenseConfig(hash_cost_factor=4)),
        DefenseCell("hash_cost_16", DefenseConfig(hash_cost_factor=16)),
        DefenseCell("hash_cost_64", DefenseConfig(hash_cost_factor=64)),
        DefenseCell("pepper", DefenseConfig(pepper=pepper)),
        DefenseCell("captcha_2", DefenseConfig(captcha_after=2)),
        DefenseCell("captcha_5", DefenseConfig(captcha_after=5)),
        DefenseCell("rate_limit_strict", DefenseConfig(**strict_rl)),
        DefenseCell("rate_limit_lenient", DefenseConfig(**lenient_rl)),
        DefenseCell(
            "lockout_1",
            DefenseConfig(lockout_policy=LockoutPolicy(max_failures=1)),
        ),
        DefenseCell(
            "lockout_10",
            DefenseConfig(lockout_policy=LockoutPolicy(max_failures=10)),
        ),
        DefenseCell(
            "pepper+hash_cost_16",
            DefenseConfig(hash_cost_factor=16, pepper=pepper),
        ),
        DefenseCell(
            "captcha_2+rate_limit_strict",
            DefenseConfig(captcha_after=2, **strict_rl),
        ),
        DefenseCell(
            "hash_cost_16+rate_limit_lenient",
            DefenseConfig(hash_cost_factor=16, **lenient_rl),
        ),
        DefenseCell(
            "pepper+captcha_2",
            DefenseConfig(pepper=pepper, captcha_after=2),
        ),
        DefenseCell(
            "hash_cost_4+lockout_10",
            DefenseConfig(
                hash_cost_factor=4,
                lockout_policy=LockoutPolicy(max_failures=10),
            ),
        ),
        DefenseCell(
            "kitchen_sink",
            DefenseConfig(
                hash_cost_factor=16,
                pepper=pepper,
                captcha_after=2,
                lockout_policy=LockoutPolicy(max_failures=10),
                **strict_rl,
            ),
        ),
    )


def _finite(value: float) -> Optional[float]:
    """JSON-safe cost: ``inf`` (nothing compromised) becomes ``None``."""
    return None if value == float("inf") else value


def _sweep_dictionary(tuple_length: int = 5) -> HumanSeededDictionary:
    """A small deterministic seed pool on the *cars* image.

    12 well-separated points (every pairwise gap exceeds the r=9 cells of
    all three schemes), so a dictionary entry matches an enrolled password
    iff it *is* that password — crack ranks are exact and scheme-stable.
    """
    seeds = tuple(
        Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)
    )
    return HumanSeededDictionary(
        seed_points=seeds, tuple_length=tuple_length, image_name="cars"
    )


#: Dictionary ranks at which the sweep's accounts are enrolled: three
#: within easy online reach, three that only the offline grind (or a
#: patient online attacker) can reach.
_ACCOUNT_RANKS = (0, 2, 6, 18, 60, 150)


def _build_store(
    system, config: DefenseConfig, passwords: Dict[str, Sequence[Point]]
) -> PasswordStore:
    """A fresh store on a virtual clock, enrolled with the population."""
    store = PasswordStore(
        system=system,
        policy=LockoutPolicy(max_failures=None),
        defense=config,
        clock=VirtualClock(),
    )
    for username in sorted(passwords):
        store.create_account(username, list(passwords[username]))
    return store


def _legit_traffic_cost(
    system,
    config: DefenseConfig,
    passwords: Dict[str, Sequence[Point]],
    logins_per_account: int = 4,
    spacing_seconds: float = 10.0,
) -> dict:
    """Defender-side cost of the cell: what the defense does to real users.

    Replays a well-behaved traffic pattern — every account logging in
    correctly every *spacing_seconds* — and reports how many of those
    legitimate attempts the defense refused (throttled) or challenged
    (CAPTCHA), alongside the modeled relative verification cost
    (``hash_cost_factor`` — each verification pays k× the hash work, the
    throughput tax gated in ``benchmarks/test_bench_defense.py``).
    """
    store = _build_store(system, config, passwords)
    accepted = throttled = challenged = 0
    attempts = 0
    for _ in range(logins_per_account):
        for username in sorted(passwords):
            attempts += 1
            if store.captcha_required(username):
                challenged += 1
            try:
                if store.login(username, list(passwords[username])):
                    accepted += 1
            except RateLimitError:
                throttled += 1
        store.clock.advance(spacing_seconds)
    return {
        "relative_hash_cost": float(config.hash_cost_factor),
        "legit_attempts": attempts,
        "legit_accepted": accepted,
        "legit_throttled": throttled,
        "legit_captcha_challenged": challenged,
    }


def defense_matrix_sweep(
    scheme: Optional[DiscretizationScheme] = None,
    cells: Optional[Sequence[DefenseCell]] = None,
    online_guess_budget: int = 30,
    offline_guess_budget: int = 200,
    attempt_seconds: float = 1.0,
    captcha_solve_seconds: Optional[float] = None,
    runner: Optional["ShardedAttackRunner"] = None,
) -> dict:
    """Run every defense cell against the online and stolen-file attacks.

    For each cell a fixed six-account population (passwords planted at
    known dictionary ranks, three inside the online budget and three
    beyond it) is enrolled under the cell's
    :class:`~repro.passwords.defense.DefenseConfig`, then attacked twice:

    * **online** — :func:`~repro.attacks.online.online_attack` through the
      live interface on a virtual clock, so CAPTCHA walls, rate-limit
      waits and lockouts land as simulated attacker seconds;
    * **offline** — the password file is stolen via ``dump_records`` and
      ground with :func:`~repro.attacks.offline.offline_attack_stolen_file`
      (without the pepper, which lives in server config, not the file).

    The returned report is machine-readable: per cell, attacker cost per
    cracked account on both paths (``None`` when the cell priced the
    attack out entirely) and the defender's verification-throughput cost.

    *runner* optionally supplies a
    :class:`~repro.attacks.parallel.ShardedAttackRunner` for the offline
    leg.  Every cell shares the same scheme, dictionary and guess budget,
    so the runner reuses one worker pool — and each worker its cached
    guess-batch arrays — across all 17 cells; results are bit-identical
    to the serial grind at any worker count or task size.
    """
    from repro.core.centered import CenteredDiscretization
    from repro.passwords.passpoints import PassPointsSystem
    from repro.study.image import cars_image

    if scheme is None:
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    matrix = tuple(cells) if cells is not None else default_defense_cells()
    if not matrix:
        raise AttackError("defense matrix needs at least one cell")
    if online_guess_budget < 1 or offline_guess_budget < 1:
        raise AttackError("guess budgets must be >= 1")

    dictionary = _sweep_dictionary()
    entries = list(dictionary.prioritized_entries(max(_ACCOUNT_RANKS) + 1))
    passwords = {
        f"user{i}": entries[rank] for i, rank in enumerate(_ACCOUNT_RANKS)
    }
    image = cars_image()
    system = PassPointsSystem(image=image, scheme=scheme)

    reports: List[dict] = []
    for cell in matrix:
        config = cell.config
        # Online: the live interface, with every countermeasure active.
        online_store = _build_store(system, config, passwords)
        online = online_attack(
            online_store,
            dictionary,
            guess_budget=online_guess_budget,
            attempt_seconds=attempt_seconds,
            captcha_solve_seconds=captcha_solve_seconds,
        )
        # Offline: steal the file from a pristine deployment and grind.
        stolen = _build_store(system, config, passwords).dump_records()
        if runner is not None:
            offline = runner.run_stolen_file(
                scheme, stolen, dictionary, guess_budget=offline_guess_budget
            )
        else:
            offline = offline_attack_stolen_file(
                scheme, stolen, dictionary, guess_budget=offline_guess_budget
            )
        defender = _legit_traffic_cost(system, config, passwords)
        reports.append(
            {
                "name": cell.name,
                "defense": config.describe(),
                "spec": config.to_spec(),
                "online": {
                    "attacked": len(online.outcomes),
                    "compromised": online.compromised,
                    "compromised_fraction": online.compromised_fraction,
                    "locked_fraction": online.locked_fraction,
                    "captcha_walled_fraction": online.captcha_walled_fraction,
                    "total_guesses": online.total_guesses,
                    "attacker_seconds": online.attacker_seconds,
                    "seconds_per_compromise": _finite(
                        online.seconds_per_compromise
                    ),
                },
                "offline": {
                    "attacked": offline.attacked,
                    "cracked": offline.cracked,
                    "cracked_fraction": offline.cracked_fraction,
                    "hash_operations": offline.hash_operations,
                    "hash_units": offline.hash_units,
                    "hash_units_per_crack": _finite(offline.hash_units_per_crack),
                },
                "defender": defender,
            }
        )
    return {
        "meta": {
            "scheme": scheme.name,
            "accounts": len(passwords),
            "account_ranks": list(_ACCOUNT_RANKS),
            "online_guess_budget": online_guess_budget,
            "offline_guess_budget": offline_guess_budget,
            "attempt_seconds": attempt_seconds,
            "captcha_solve_seconds": captcha_solve_seconds,
            "cells": len(reports),
        },
        "cells": reports,
    }


def render_defense_matrix(report: dict) -> str:
    """Human-readable table for a :func:`defense_matrix_sweep` report.

    One row per cell: online and offline compromise counts, attacker cost
    per cracked account on each path (``-`` when the attack came up
    empty), and the defender's relative verification cost.
    """
    meta = report["meta"]
    header = (
        f"defense matrix — scheme={meta['scheme']} accounts={meta['accounts']} "
        f"online_budget={meta['online_guess_budget']} "
        f"offline_budget={meta['offline_guess_budget']}"
    )
    columns = (
        f"{'cell':<32} {'on.crk':>6} {'s/crack':>9} "
        f"{'off.crk':>7} {'units/crack':>11} {'def.cost':>8}"
    )
    lines = [header, columns, "-" * len(columns)]
    for cell in report["cells"]:
        online = cell["online"]
        offline = cell["offline"]
        seconds = online["seconds_per_compromise"]
        units = offline["hash_units_per_crack"]
        lines.append(
            f"{cell['name']:<32} "
            f"{online['compromised']:>6d} "
            f"{('%.1f' % seconds) if seconds is not None else '-':>9} "
            f"{offline['cracked']:>7d} "
            f"{('%.1f' % units) if units is not None else '-':>11} "
            f"{cell['defender']['relative_hash_cost']:>8.0f}"
        )
    return "\n".join(lines)
