"""Attack economics: what cracking actually costs, in hashes and hours.

Turns the paper's security comparisons into operational numbers:

* **expected guesses to first success** — with ``m`` matching entries
  uniformly placed in a dictionary of ``N``, a random-order enumeration
  expects ``(N + 1) / (m + 1)`` guesses before the first hit;
* **hash budget** for a full offline enumeration, with and without known
  grid identifiers (the §5.1 work-factor analysis), scaled by the record's
  iteration count (§3.2's h^1000 hardening);
* **wall-clock estimates** for a given attacker hash rate.

These close the loop between the paper's bit-counting arguments and the
concrete question a deployer asks: "how long does a stolen password file
survive?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import OfflineAttackResult, hash_only_work_factor
from repro.core.scheme import DiscretizationScheme
from repro.crypto.hashing import Hasher
from repro.errors import AttackError

__all__ = [
    "expected_guesses_to_crack",
    "CrackingCostEstimate",
    "offline_cracking_cost",
    "summarize_attack_economics",
]

#: A mid-range GPU's SHA-256 throughput, order of magnitude (hashes/second).
DEFAULT_HASH_RATE = 1e9


def expected_guesses_to_crack(
    matching_entries: int, dictionary_size: int
) -> Optional[float]:
    """Expected random-order guesses until the first matching entry.

    ``(N + 1) / (m + 1)`` for m matching entries among N; ``None`` when no
    entry matches (the dictionary cannot crack this password).
    """
    if dictionary_size < 1:
        raise AttackError(f"dictionary_size must be >= 1, got {dictionary_size}")
    if matching_entries < 0 or matching_entries > dictionary_size:
        raise AttackError(
            f"matching_entries {matching_entries} out of range for "
            f"dictionary of {dictionary_size}"
        )
    if matching_entries == 0:
        return None
    return (dictionary_size + 1) / (matching_entries + 1)


@dataclass(frozen=True, slots=True)
class CrackingCostEstimate:
    """Hash and time budget for one offline attack configuration."""

    scheme_name: str
    dictionary_entries: int
    identifier_multiplier: float
    hash_iterations: int
    hash_rate: float

    @property
    def hashes_per_password(self) -> float:
        """Worst-case hash invocations to exhaust the dictionary."""
        return (
            self.dictionary_entries
            * self.identifier_multiplier
            * self.hash_iterations
        )

    @property
    def seconds_per_password(self) -> float:
        """Worst-case wall-clock seconds per password at the hash rate."""
        return self.hashes_per_password / self.hash_rate

    @property
    def hours_per_password(self) -> float:
        """Worst-case wall-clock hours per password."""
        return self.seconds_per_password / 3600.0


def offline_cracking_cost(
    scheme: DiscretizationScheme,
    dictionary: HumanSeededDictionary,
    hasher: Hasher = Hasher(),
    identifiers_known: bool = True,
    hash_rate: float = DEFAULT_HASH_RATE,
) -> CrackingCostEstimate:
    """Cost model for exhausting the dictionary against one password.

    With identifiers known every entry costs one (iterated) hash; without
    them the §5.1 multiplier applies — 3^clicks for Robust, ((2r)²)^clicks
    for Centered.
    """
    if hash_rate <= 0:
        raise AttackError(f"hash_rate must be > 0, got {hash_rate}")
    if identifiers_known:
        multiplier = 1.0
    else:
        multiplier = hash_only_work_factor(scheme, dictionary.tuple_length)[
            "multiplier"
        ]
    return CrackingCostEstimate(
        scheme_name=scheme.name,
        dictionary_entries=dictionary.entry_count,
        identifier_multiplier=multiplier,
        hash_iterations=hasher.iterations,
        hash_rate=hash_rate,
    )


def summarize_attack_economics(
    result: OfflineAttackResult,
    estimate: CrackingCostEstimate,
) -> dict:
    """Combine an attack outcome with its cost model.

    Returns crackable fraction, mean/median expected guesses for the
    crackable passwords, and the wall-clock budget to fully process the
    attacked set.
    """
    expectations = []
    for outcome in result.outcomes:
        if outcome.cracked and outcome.matching_entries > 0:
            expectations.append(
                expected_guesses_to_crack(
                    outcome.matching_entries, result.hash_operations_modeled
                    // max(1, result.attacked)
                )
            )
    expectations = [e for e in expectations if e is not None]
    expectations.sort()
    mean_guesses = (
        sum(expectations) / len(expectations) if expectations else None
    )
    median_guesses = (
        expectations[len(expectations) // 2] if expectations else None
    )
    return {
        "scheme": result.scheme_name,
        "image": result.image_name,
        "attacked": result.attacked,
        "cracked": result.cracked,
        "cracked_fraction": result.cracked_fraction,
        "mean_expected_guesses": mean_guesses,
        "median_expected_guesses": median_guesses,
        "hashes_per_password": estimate.hashes_per_password,
        "hours_per_password": estimate.hours_per_password,
        "hours_total": estimate.hours_per_password * result.attacked,
    }
