"""Divide-and-conquer attacks on per-point hashing (paper §3.1).

The paper stores **one** hash over all click-points' offsets and indices:
"In practice, if a password consists of more than one click-point, all
segment indices and their offsets are concatenated and hashed together as
one.  This stops attackers from matching individual points, and thus
carrying out an efficient divide-and-conquer attack."

This module makes that design rationale demonstrable by implementing the
*insecure alternative* — a record with one hash per click-point — and the
attack it enables:

* against the **combined** hash, a dictionary of ``n`` seed points costs
  ``P(n, k) ≈ n^k`` hash trials per password (2^36 for the paper's
  parameters);
* against **per-point** hashes, each position is attacked independently at
  ``n`` trials, so the whole password falls in ``k · n`` trials (750 for
  the paper's parameters) — a ~2^26 speedup.

Nothing in the main library uses per-point records; they exist only here,
as the cautionary baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.scheme import DiscretizationScheme
from repro.crypto.hashing import Hasher
from repro.crypto.records import VerificationRecord, make_record
from repro.errors import AttackError, VerificationError
from repro.geometry.point import Point

__all__ = [
    "PerPointStoredPassword",
    "enroll_per_point",
    "verify_per_point",
    "divide_and_conquer_attack",
    "attack_cost_comparison",
]


@dataclass(frozen=True, slots=True)
class PerPointStoredPassword:
    """The INSECURE storage layout: one verification record per click-point.

    Identical public material to the proper layout — the only difference is
    hashing each point separately instead of all points together.
    """

    scheme_name: str
    records: Tuple[VerificationRecord, ...]

    @property
    def clicks(self) -> int:
        """Number of click-points."""
        return len(self.records)


def enroll_per_point(
    scheme: DiscretizationScheme,
    points: Sequence[Point],
    hasher: Hasher | None = None,
) -> PerPointStoredPassword:
    """Enroll a password with per-point hashes (for attack demonstration)."""
    if not points:
        raise VerificationError("a password needs at least one click-point")
    hasher = hasher if hasher is not None else Hasher()
    records = []
    for point in points:
        enrollment = scheme.enroll(point)
        records.append(
            make_record(
                enrollment.public,
                tuple(int(i) for i in enrollment.secret),
                hasher,
            )
        )
    return PerPointStoredPassword(
        scheme_name=scheme.name, records=tuple(records)
    )


def verify_per_point(
    scheme: DiscretizationScheme,
    stored: PerPointStoredPassword,
    points: Sequence[Point],
) -> bool:
    """Verify a login against per-point records (all must match)."""
    if len(points) != stored.clicks:
        raise VerificationError(
            f"expected {stored.clicks} click-points, got {len(points)}"
        )
    for point, record in zip(points, stored.records):
        located = scheme.locate(point, record.public)
        if not record.matches(tuple(int(i) for i in located)):
            return False
    return True


@dataclass(frozen=True, slots=True)
class DivideAndConquerResult:
    """Outcome of a divide-and-conquer attack on one per-point password."""

    cracked: bool
    per_position_matches: Tuple[Tuple[Point, ...], ...]
    hash_trials: int

    @property
    def recovered_candidates(self) -> int:
        """Number of full-password candidates implied by the matches."""
        total = 1
        for matches in self.per_position_matches:
            total *= len(matches)
        return total


def divide_and_conquer_attack(
    scheme: DiscretizationScheme,
    stored: PerPointStoredPassword,
    seed_points: Sequence[Point],
) -> DivideAndConquerResult:
    """Attack per-point hashes position-by-position.

    For every position, hash each seed point under that position's stored
    public material and compare against the stored digest — ``k · n``
    hash trials total, *actually performed* here (no closed-form shortcut;
    the point of this attack is that brute force is affordable).
    """
    if not seed_points:
        raise AttackError("no seed points supplied")
    per_position: List[Tuple[Point, ...]] = []
    trials = 0
    for record in stored.records:
        matches = []
        for seed in seed_points:
            trials += 1
            located = scheme.locate(seed, record.public)
            if record.matches(tuple(int(i) for i in located)):
                matches.append(seed)
        per_position.append(tuple(matches))
    cracked = all(per_position)
    return DivideAndConquerResult(
        cracked=cracked,
        per_position_matches=tuple(per_position),
        hash_trials=trials,
    )


def attack_cost_comparison(seed_count: int, clicks: int = 5) -> dict:
    """Hash-trial counts: combined hash vs per-point hashes.

    >>> costs = attack_cost_comparison(150, 5)
    >>> costs["per_point_trials"]
    750
    """
    import math

    if seed_count < clicks:
        raise AttackError(
            f"need at least {clicks} seed points, got {seed_count}"
        )
    combined = math.perm(seed_count, clicks)
    per_point = seed_count * clicks
    return {
        "combined_trials": combined,
        "per_point_trials": per_point,
        "speedup": combined / per_point,
        "speedup_bits": math.log2(combined / per_point),
    }
