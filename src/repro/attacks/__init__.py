"""Attack suite: the paper's §5 security evaluation, executable.

Human-seeded dictionaries with exact closed-form crack decisions, offline
attacks with known grid identifiers (Figures 7–8), the hash-only work-factor
model, throttled online attacks, hotspot harvesting, shoulder-surfing,
grid-identifier leakage analysis, and a work-stealing parallel attack
engine (:mod:`repro.attacks.parallel`) that scales the offline attacks
across CPU cores — static shards or a dynamic task queue — with
bit-identical results at any worker count, mode or task size.
"""

from repro.attacks.dictionary import (
    HumanSeededDictionary,
    partition_moebius_weight,
    set_partitions,
)
from repro.attacks.divide_conquer import (
    PerPointStoredPassword,
    attack_cost_comparison,
    divide_and_conquer_attack,
    enroll_per_point,
    verify_per_point,
)
from repro.attacks.economics import (
    CrackingCostEstimate,
    DefenseCell,
    default_defense_cells,
    defense_matrix_sweep,
    expected_guesses_to_crack,
    offline_cracking_cost,
    render_defense_matrix,
    summarize_attack_economics,
)
from repro.attacks.hotspot import (
    HarvestedHotspot,
    dictionary_from_hotspots,
    harvest_hotspots,
    hotspot_coverage,
    hotspot_seed_points,
    salience_hotspots,
)
from repro.attacks.leakage import (
    LeakageRanking,
    cell_salience_ranking,
    identifier_bits,
)
from repro.attacks.offline import (
    GuessBatch,
    OfflineAttackResult,
    PasswordAttackOutcome,
    StolenAccountOutcome,
    StolenFileAttackResult,
    hash_only_work_factor,
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
    prepare_guess_batch,
)
from repro.attacks.online import AccountOutcome, OnlineAttackResult, online_attack
from repro.attacks.parallel import (
    AttackRunStats,
    DictionarySpec,
    SchemeSpec,
    ShardedAttackRunner,
    auto_task_size,
    default_workers,
    merge_offline_results,
    merge_stolen_results,
    partition_evenly,
)
from repro.attacks.shoulder import ShoulderSurfResult, shoulder_surf_attack

__all__ = [
    "AccountOutcome",
    "CrackingCostEstimate",
    "DefenseCell",
    "default_defense_cells",
    "defense_matrix_sweep",
    "render_defense_matrix",
    "HarvestedHotspot",
    "HumanSeededDictionary",
    "LeakageRanking",
    "expected_guesses_to_crack",
    "offline_cracking_cost",
    "summarize_attack_economics",
    "AttackRunStats",
    "DictionarySpec",
    "GuessBatch",
    "OfflineAttackResult",
    "OnlineAttackResult",
    "SchemeSpec",
    "ShardedAttackRunner",
    "auto_task_size",
    "default_workers",
    "prepare_guess_batch",
    "merge_offline_results",
    "merge_stolen_results",
    "partition_evenly",
    "PasswordAttackOutcome",
    "PerPointStoredPassword",
    "ShoulderSurfResult",
    "StolenAccountOutcome",
    "StolenFileAttackResult",
    "offline_attack_stolen_file",
    "parse_password_file",
    "attack_cost_comparison",
    "cell_salience_ranking",
    "divide_and_conquer_attack",
    "enroll_per_point",
    "verify_per_point",
    "dictionary_from_hotspots",
    "harvest_hotspots",
    "hotspot_coverage",
    "hash_only_work_factor",
    "hotspot_seed_points",
    "identifier_bits",
    "offline_attack_known_identifiers",
    "online_attack",
    "partition_moebius_weight",
    "salience_hotspots",
    "set_partitions",
    "shoulder_surf_attack",
]
