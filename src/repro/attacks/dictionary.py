"""Human-seeded attack dictionaries (paper §5.1).

The paper's attack dictionary is built from 30 lab-study passwords per
image: their 150 click-points seed "all possible 5-click-point permutations"
— ordered tuples of distinct seed points — giving ≈ 2^36 entries per image.
Enumerating 2^36 hashes is the attacker's cost, not the analyst's: whether
*any* entry cracks a password, and exactly *how many* do, can be computed in
closed form from the per-position match sets.

* A password is cracked by some entry  ⟺  the bipartite graph between
  click positions and matching seed points has a perfect matching on the
  positions (Hall's condition); we decide this with a tiny augmenting-path
  matcher (5 positions × 150 points).
* The exact number of cracking entries is the permanent of the 5×150
  biadjacency matrix, computed by Möbius inversion over the partition
  lattice of the 5 positions (52 partitions — exact and fast).

For attackers that cannot afford full enumeration (online attacks), the
dictionary also yields entries **best-first by popularity**: tuples ordered
by the product of their points' empirical seed popularity, via lazy heap
expansion.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.batch import BatchDiscretization, as_point_array
from repro.core.scheme import Discretization, DiscretizationScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample

__all__ = [
    "HumanSeededDictionary",
    "INJECTIVE_CACHE_MAXSIZE",
    "set_partitions",
    "partition_moebius_weight",
]


def set_partitions(items: Sequence[int]) -> Iterator[Tuple[Tuple[int, ...], ...]]:
    """Yield all partitions of *items* into non-empty blocks.

    Standard recursive construction; Bell(5) = 52 partitions for the
    classic 5-click case.
    """
    items = list(items)
    if not items:
        yield ()
        return
    first, rest = items[0], items[1:]
    for sub_partition in set_partitions(rest):
        # first joins an existing block...
        for index, block in enumerate(sub_partition):
            yield (
                sub_partition[:index]
                + ((first,) + block,)
                + sub_partition[index + 1 :]
            )
        # ...or starts its own.
        yield ((first,),) + sub_partition


def partition_moebius_weight(partition: Tuple[Tuple[int, ...], ...]) -> int:
    """Möbius weight of a partition in the injective-count inversion.

    For counting injective tuples from per-position candidate sets:
    ``Σ_partitions  Π_blocks (-1)^(|B|-1) (|B|-1)! · |∩_{j∈B} m_j|``.
    This function returns the ``Π_blocks (-1)^(|B|-1) (|B|-1)!`` factor.
    """
    weight = 1
    for block in partition:
        size = len(block)
        weight *= (-1) ** (size - 1) * math.factorial(size - 1)
    return weight


#: Bound on the injective-count memo.  Long-lived processes (the parallel
#: engine's pooled workers grinding millions of accounts) would otherwise
#: grow the memo without limit; 4096 distinct match structures comfortably
#: covers a whole field-study image while capping the per-process footprint.
INJECTIVE_CACHE_MAXSIZE = 4096


@functools.lru_cache(maxsize=INJECTIVE_CACHE_MAXSIZE)
def _count_injective_cached(canonical_sets: Tuple[Tuple[int, ...], ...]) -> int:
    """Memoized injective-tuple count for a canonicalized match-set key.

    The key is the position-order-canonicalized match sets (the count is a
    permanent, invariant under permuting positions), so attack loops over
    many passwords that induce the same match structure — common on
    hotspot-heavy images — pay the Möbius inversion once.

    Before recursing into the Bell-number partition sum, positions are
    short-circuited: any empty match set zeroes the count outright, and a
    singleton position must take its only seed point, which removes that
    point from every other position's set and shrinks the partition
    lattice one position at a time.
    """
    sets = [set(s) for s in canonical_sets]
    while True:
        if any(not s for s in sets):
            return 0
        singleton = next((i for i, s in enumerate(sets) if len(s) == 1), None)
        if singleton is None:
            break
        value = next(iter(sets[singleton]))
        sets = [s - {value} for i, s in enumerate(sets) if i != singleton]
    if not sets:
        return 1
    total = 0
    for partition in set_partitions(range(len(sets))):
        term = partition_moebius_weight(partition)
        for block in partition:
            common = set.intersection(*[sets[j] for j in block])
            term *= len(common)
            if term == 0:
                break
        total += term
    return total


@dataclass(frozen=True)
class HumanSeededDictionary:
    """The attacker's dictionary: seed click-points and derived machinery.

    Attributes
    ----------
    seed_points:
        The flattened pool of observed click-points (150 for the paper's
        30×5 configuration).
    tuple_length:
        Entry length (5 for classic PassPoints).
    image_name:
        The image the seeds were harvested from (entries only make sense
        against passwords on the same image).
    """

    seed_points: Tuple[Point, ...]
    tuple_length: int = 5
    image_name: str = ""

    def __post_init__(self) -> None:
        if self.tuple_length < 1:
            raise AttackError(f"tuple_length must be >= 1, got {self.tuple_length}")
        if len(self.seed_points) < self.tuple_length:
            raise AttackError(
                f"need at least {self.tuple_length} seed points, got "
                f"{len(self.seed_points)}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_lab_passwords(
        cls, samples: Sequence[PasswordSample], tuple_length: int = 5
    ) -> "HumanSeededDictionary":
        """Build the dictionary from lab-study passwords (paper's method)."""
        if not samples:
            raise AttackError("need at least one lab password")
        image_names = {s.image_name for s in samples}
        if len(image_names) != 1:
            raise AttackError(
                f"lab passwords span multiple images: {sorted(image_names)}"
            )
        points: List[Point] = []
        for sample in samples:
            points.extend(sample.points)
        return cls(
            seed_points=tuple(points),
            tuple_length=tuple_length,
            image_name=image_names.pop(),
        )

    # -- size ----------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of entries: ordered tuples of distinct seed points.

        For the paper's 150-point pool and 5-click tuples this is
        P(150, 5) = 150·149·148·147·146 ≈ 2^36.05 — the "36-bit
        dictionary" of Figures 7–8.
        """
        n = len(self.seed_points)
        return math.perm(n, self.tuple_length)

    @property
    def bits(self) -> float:
        """log2 of the entry count."""
        return math.log2(self.entry_count)

    # -- cracking decision ------------------------------------------------------

    def match_sets(
        self, accepts: Callable[[int, Point], bool]
    ) -> Tuple[Tuple[int, ...], ...]:
        """Per-position sets of seed-point indices accepted at that position.

        *accepts(position, point)* is the oracle "would this seed point,
        placed at this click position, fall in the stored cell?" — supplied
        by the offline attack, which knows the stored public material.
        """
        return tuple(
            tuple(
                index
                for index, point in enumerate(self.seed_points)
                if accepts(position, point)
            )
            for position in range(self.tuple_length)
        )

    def seed_array(self) -> "np.ndarray":
        """The seed pool as an ``(N, dim)`` float64 array for batch kernels.

        Built once and cached (the dataclass is frozen, so the pool can
        never change); the cached array is read-only.  Per-password attack
        loops can therefore call this freely.
        """
        cached = self.__dict__.get("_seed_array")
        if cached is None:
            cached = as_point_array(self.seed_points)
            cached.flags.writeable = False
            self.__dict__["_seed_array"] = cached
        return cached

    def match_sets_batch(
        self,
        scheme: "DiscretizationScheme",
        enrollments: Sequence["Discretization"],
    ) -> Tuple[Tuple[int, ...], ...]:
        """Vectorized :meth:`match_sets` against per-position enrollments.

        One :meth:`~repro.core.batch.BatchKernel.accepts` call per click
        position tests the entire seed pool against that position's stored
        cell.  For a whole password enrolled through
        :func:`~repro.core.batch.discretize_batch`, prefer
        :meth:`match_mask_batch`, which answers all positions in a single
        kernel call.
        """
        if len(enrollments) != self.tuple_length:
            raise AttackError(
                f"expected {self.tuple_length} enrollments, got "
                f"{len(enrollments)}"
            )
        kernel = scheme.batch(xp=np)  # host pipeline: np ops on every mask
        seeds = self.seed_array()
        return tuple(
            tuple(int(i) for i in np.nonzero(kernel.accepts(enrollment, seeds))[0])
            for enrollment in enrollments
        )

    def match_mask_batch(
        self,
        scheme: "DiscretizationScheme",
        enrollment: "BatchDiscretization",
    ) -> "np.ndarray":
        """``(positions, N)`` acceptance mask in **one** kernel call.

        *enrollment* is a whole password discretized at once via
        :func:`~repro.core.batch.discretize_batch` (one row per click
        position).  The seed pool is tiled against every position's
        stored public material and located in a single vectorized call,
        so the per-password attack cost is one ``(positions·N, dim)``
        array pass instead of ``positions`` separate kernel calls.
        """
        positions = len(enrollment)
        if positions != self.tuple_length:
            raise AttackError(
                f"expected {self.tuple_length} enrolled positions, got "
                f"{positions}"
            )
        kernel = scheme.batch(xp=np)  # host pipeline: np.tile/np.repeat below
        seeds = self.seed_array()
        pool = len(seeds)
        tiled_seeds = np.tile(seeds, (positions, 1))
        tiled_public = np.repeat(enrollment.public, pool, axis=0)
        tiled_secret = np.repeat(enrollment.secret, pool, axis=0)
        located = kernel.locate(tiled_seeds, tiled_public)
        return np.all(located == tiled_secret, axis=1).reshape(positions, pool)

    @staticmethod
    def match_sets_from_mask(mask: "np.ndarray") -> Tuple[Tuple[int, ...], ...]:
        """Convert a :meth:`match_mask_batch` mask to per-position index sets."""
        return tuple(
            tuple(int(i) for i in np.nonzero(row)[0]) for row in mask
        )

    @staticmethod
    def has_injective_assignment(match_sets: Sequence[Sequence[int]]) -> bool:
        """Whether distinct seed points can fill every position.

        Augmenting-path bipartite matching with positions on the small side;
        O(positions² · points) worst case, trivial at 5×150.
        """
        assigned: dict[int, int] = {}  # seed index -> position

        def try_assign(position: int, banned: set) -> bool:
            for seed in match_sets[position]:
                if seed in banned:
                    continue
                banned.add(seed)
                if seed not in assigned or try_assign(assigned[seed], banned):
                    assigned[seed] = position
                    return True
            return False

        return all(try_assign(position, set()) for position in range(len(match_sets)))

    def cracks(self, accepts: Callable[[int, Point], bool]) -> bool:
        """Whether *any* dictionary entry cracks the target password."""
        return self.has_injective_assignment(self.match_sets(accepts))

    @staticmethod
    def count_injective_assignments(match_sets: Sequence[Sequence[int]]) -> int:
        """Exact number of ordered distinct-point tuples filling all positions.

        Permanent of the position×seed biadjacency matrix via Möbius
        inversion over position partitions: distinctness of seed points is
        handled exactly, with Bell(tuple_length) terms.  The computation is
        memoized on the canonicalized match sets (the permanent is
        position-order invariant) and short-circuits empty and singleton
        positions before touching the partition lattice — this is the
        per-password CPU hotspot of the known-identifier attack loop.
        """
        key = tuple(sorted(tuple(sorted(set(m))) for m in match_sets))
        return _count_injective_cached(key)

    @staticmethod
    def assignment_cache_info() -> "functools._CacheInfo":
        """Hit/miss/size statistics of the injective-count memo.

        The memo is process-wide and bounded at
        :data:`INJECTIVE_CACHE_MAXSIZE` entries; these stats let tests and
        long-running attack loops confirm both that the cache is earning
        its keep (hits on hotspot-heavy images) and that it cannot grow
        without bound.
        """
        return _count_injective_cached.cache_info()

    @staticmethod
    def assignment_cache_clear() -> None:
        """Reset the injective-count memo (mainly for test isolation)."""
        _count_injective_cached.cache_clear()

    def matching_entry_count(self, accepts: Callable[[int, Point], bool]) -> int:
        """Exact number of dictionary entries that crack the target."""
        return self.count_injective_assignments(self.match_sets(accepts))

    # -- prioritized enumeration ---------------------------------------------------

    def popularity_scores(self) -> Tuple[float, ...]:
        """Empirical popularity of each seed point.

        A point observed (near-)identically several times in the seed pool
        is more popular; we count neighbours within Chebyshev distance 5 as
        "the same spot".  The pairwise count is vectorized in row chunks,
        so peak memory stays bounded (a few million matrix elements) even
        for the 10^5-point pools the batch engine targets.
        """
        xs = np.array([int(p.x) for p in self.seed_points], dtype=np.int64)
        ys = np.array([int(p.y) for p in self.seed_points], dtype=np.int64)
        n = len(xs)
        counts = np.empty(n, dtype=np.int64)
        chunk = max(1, 4_000_000 // n)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            chebyshev = np.maximum(
                np.abs(xs[start:stop, None] - xs[None, :]),
                np.abs(ys[start:stop, None] - ys[None, :]),
            )
            counts[start:stop] = (chebyshev <= 5).sum(axis=1)
        return tuple(float(c) for c in counts)

    def prioritized_entries(self, limit: int) -> Iterator[Tuple[Point, ...]]:
        """Yield up to *limit* entries, best-first by popularity product.

        Lazy best-first search over the sorted seed list: start from the
        top tuple (indices 0..k-1 of the popularity-sorted order) and
        expand one index at a time, deduplicating via a visited set.
        Entries with repeated seed points are skipped (dictionary entries
        are ordered tuples of distinct points).
        """
        if limit < 0:
            raise AttackError(f"limit must be >= 0, got {limit}")
        scores = self.popularity_scores()
        order = sorted(
            range(len(self.seed_points)), key=lambda i: -scores[i]
        )
        k = self.tuple_length

        def tuple_score(ranks: Tuple[int, ...]) -> float:
            product = 1.0
            for rank in ranks:
                product *= scores[order[rank]]
            return product

        start = tuple(range(k))
        heap = [(-tuple_score(start), start)]
        visited = {start}
        yielded = 0
        while heap and yielded < limit:
            negative_score, ranks = heapq.heappop(heap)
            indices = tuple(order[rank] for rank in ranks)
            if len(set(indices)) == k:
                yield tuple(self.seed_points[i] for i in indices)
                yielded += 1
            for slot in range(k):
                bumped = ranks[slot] + 1
                if bumped >= len(self.seed_points):
                    continue
                successor = ranks[:slot] + (bumped,) + ranks[slot + 1 :]
                if successor in visited:
                    continue
                visited.add(successor)
                heapq.heappush(heap, (-tuple_score(successor), successor))

    def enumerate_all(self) -> Iterator[Tuple[Point, ...]]:
        """Exhaustive entry enumeration (only sane for tiny seed pools).

        Provided for test cross-validation of the closed-form machinery;
        guarded against accidental 2^36-entry iteration.
        """
        if self.entry_count > 2_000_000:
            raise AttackError(
                f"refusing to enumerate {self.entry_count} entries; use the "
                "closed-form cracks()/matching_entry_count() instead"
            )
        yield from itertools.permutations(self.seed_points, self.tuple_length)
